/**
 * @file
 * Tests for the fast (approximate) basis conversion against exact
 * big-integer references, including the u*F slack bound.
 */

#include <gtest/gtest.h>

#include <random>

#include "hemath/bconv.h"
#include "hemath/primes.h"

using namespace ciflow;

namespace
{

/**
 * Check that y equals (x + u*F) mod t for some 0 <= u < k, returning u
 * or -1 when no such u exists.
 */
int
slackFor(const UBigInt &x, const UBigInt &big_f, u64 t, u64 y,
         std::size_t k)
{
    for (std::size_t u = 0; u < k; ++u) {
        UBigInt v = x + big_f * UBigInt(u);
        if (v.mod64(t) == y)
            return static_cast<int>(u);
    }
    return -1;
}

} // namespace

class BConvTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
  protected:
    void
    SetUp() override
    {
        auto [from_count, to_count] = GetParam();
        const std::size_t n = 1 << 6;
        auto from_primes = generateNttPrimes(from_count, 45, n);
        auto to_primes = generateNttPrimes(to_count, 50, n, from_primes);
        from = std::make_unique<RnsBase>(from_primes);
        to = std::make_unique<RnsBase>(to_primes);
        conv = std::make_unique<BaseConverter>(*from, *to);
    }

    std::unique_ptr<RnsBase> from, to;
    std::unique_ptr<BaseConverter> conv;
};

TEST_P(BConvTest, SingleCoefficientWithinSlackBound)
{
    std::mt19937_64 gen(21);
    for (int iter = 0; iter < 40; ++iter) {
        UBigInt x = (UBigInt(gen()) * UBigInt(gen()) * UBigInt(gen())) %
                    from->product();
        auto res = from->decompose(x);
        auto y = conv->convertCoeff(res);
        ASSERT_EQ(y.size(), to->size());
        for (std::size_t j = 0; j < to->size(); ++j) {
            // HPS bound: result = x + u*F with 0 <= u < k.
            int u = slackFor(x, from->product(), to->modulus(j), y[j],
                             from->size());
            EXPECT_GE(u, 0) << "no valid slack for target " << j;
        }
    }
}

TEST_P(BConvTest, BatchMatchesScalarPath)
{
    const std::size_t n = 32;
    std::mt19937_64 gen(22);
    std::vector<std::vector<u64>> src(from->size(),
                                      std::vector<u64>(n));
    for (std::size_t i = 0; i < from->size(); ++i)
        for (std::size_t k = 0; k < n; ++k)
            src[i][k] = gen() % from->modulus(i);

    std::vector<std::vector<u64>> dst;
    conv->convert(src, dst);
    ASSERT_EQ(dst.size(), to->size());

    for (std::size_t k = 0; k < n; ++k) {
        std::vector<u64> coeff(from->size());
        for (std::size_t i = 0; i < from->size(); ++i)
            coeff[i] = src[i][k];
        auto y = conv->convertCoeff(coeff);
        for (std::size_t j = 0; j < to->size(); ++j)
            EXPECT_EQ(dst[j][k], y[j]);
    }
}

TEST_P(BConvTest, ConvertTowerMatchesBatchColumn)
{
    const std::size_t n = 16;
    std::mt19937_64 gen(23);
    std::vector<std::vector<u64>> src(from->size(),
                                      std::vector<u64>(n));
    for (std::size_t i = 0; i < from->size(); ++i)
        for (std::size_t k = 0; k < n; ++k)
            src[i][k] = gen() % from->modulus(i);

    std::vector<std::vector<u64>> dst;
    conv->convert(src, dst);
    for (std::size_t j = 0; j < to->size(); ++j) {
        auto col = conv->convertTower(src, j);
        EXPECT_EQ(col, dst[j]) << "OC column " << j;
    }
}

TEST_P(BConvTest, ZeroConvertsToZero)
{
    std::vector<u64> zero(from->size(), 0);
    auto y = conv->convertCoeff(zero);
    for (u64 v : y)
        EXPECT_EQ(v, 0u);
}

TEST_P(BConvTest, MulCountFormula)
{
    EXPECT_EQ(conv->mulsPerCoeff(),
              from->size() * (1 + to->size()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BConvTest,
    ::testing::Values(std::make_tuple(1, 3), std::make_tuple(2, 5),
                      std::make_tuple(3, 3), std::make_tuple(4, 7),
                      std::make_tuple(6, 2)));
