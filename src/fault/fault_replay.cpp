#include "fault/fault_replay.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/traced_replay.h"

namespace ciflow::fault
{

using shard::Partition;
using shard::ShardedCompiled;

namespace
{

/**
 * Per-resource fault contribution, in normalized trace order so
 * multiplier products fold identically everywhere. A contribution
 * is active on [at, end); permanent degrades have end = +inf.
 */
struct Span
{
    double at;
    double end;
    double factor;
};

/**
 * Shared fold of per-resource spans into a RateEpochs table: epoch
 * boundaries are the span edges shifted into the replay's local clock
 * (edges already past fold into one state at time 0; edges at or past
 * `horizonSec` are dropped — a replay that ends before the horizon
 * never reaches them), and the multiplier at each boundary is the
 * product of every active span's factor in span order, so the folded
 * products are reproducible to the bit across builders.
 */
sim::RateEpochs
foldSpans(const std::vector<std::vector<Span>> &spans, double timeShift,
          double horizonSec)
{
    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t nres = spans.size();
    sim::RateEpochs ep;
    ep.off.assign(nres + 1, 0);
    std::vector<double> bounds;
    for (std::size_t r = 0; r < nres; ++r) {
        ep.off[r] = static_cast<std::uint32_t>(ep.at.size());
        if (spans[r].empty())
            continue;
        bounds.clear();
        for (const Span &s : spans[r]) {
            bounds.push_back(std::max(0.0, s.at - timeShift));
            if (s.end < inf)
                bounds.push_back(std::max(0.0, s.end - timeShift));
        }
        std::sort(bounds.begin(), bounds.end());
        bounds.erase(std::unique(bounds.begin(), bounds.end()),
                     bounds.end());
        double prev = 1.0;
        for (double t : bounds) {
            if (t >= horizonSec)
                break;
            const double abs = t + timeShift;
            // Multiplier at local time t: the product of every active
            // span's factor, folded in trace order.
            double m = 1.0;
            for (const Span &s : spans[r])
                if (s.at <= abs && abs < s.end)
                    m *= s.factor;
            if (m == prev)
                continue;
            ep.at.push_back(t);
            ep.mult.push_back(m);
            prev = m;
        }
    }
    ep.off[nres] = static_cast<std::uint32_t>(ep.at.size());
    if (ep.mult.empty()) {
        // Every event was a ChipFail, already recovered, or beyond
        // the horizon: no epochs.
        ep.off.clear();
        ep.at.clear();
    }
    return ep;
}

} // namespace

sim::RateEpochs
buildEpochs(const FaultTrace &trace, const ShardedCompiled &sc,
            double timeShift, double horizonSec)
{
    const std::size_t nres =
        sc.shards * sc.perChip + sc.links;
    if (trace.events.empty())
        return {};

    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<Span>> spans(nres);
    const auto add = [&](std::size_t r, double at, double end,
                         double factor) {
        panicIf(r >= nres, "fault event outside the machine shape");
        spans[r].push_back({at, end, factor});
    };
    for (const FaultEvent &e : trace.events) {
        switch (e.kind) {
        case FaultKind::ChipFail:
            // Failure is failover's job, not a rate epoch.
            break;
        case FaultKind::ChannelDegrade:
            add(std::size_t{e.shard} * sc.perChip + e.channel, e.atSec,
                inf, e.factor);
            break;
        case FaultKind::LinkDegrade:
            add(sc.shards * sc.perChip + e.channel, e.atSec, inf,
                e.factor);
            break;
        case FaultKind::TransientStall:
            for (std::size_t r = 0; r < sc.perChip; ++r)
                add(std::size_t{e.shard} * sc.perChip + r, e.atSec,
                    e.atSec + e.durSec, e.factor);
            break;
        }
    }
    return foldSpans(spans, timeShift, horizonSec);
}

sim::RateEpochs
buildChipEpochs(const FaultTrace &trace, std::uint32_t shard,
                std::size_t chipResources, double timeShift,
                double horizonSec)
{
    if (trace.events.empty())
        return {};
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<Span>> spans(chipResources);
    for (const FaultEvent &e : trace.events) {
        if (e.shard != shard)
            continue;
        switch (e.kind) {
        case FaultKind::ChannelDegrade:
            panicIf(e.channel >= chipResources,
                    "fault event outside the chip block");
            spans[e.channel].push_back({e.atSec, inf, e.factor});
            break;
        case FaultKind::TransientStall:
            for (std::size_t r = 0; r < chipResources; ++r)
                spans[r].push_back(
                    {e.atSec, e.atSec + e.durSec, e.factor});
            break;
        default:
            // ChipFail is failover's job; LinkDegrade has no meaning
            // inside one chip's resource block.
            break;
        }
    }
    return foldSpans(spans, timeShift, horizonSec);
}

FaultSim::FaultSim(const TaskGraph &g, const shard::ShardSpec &sp,
                   const std::vector<double> &w, const Partition &part,
                   const RpuConfig &chip,
                   const shard::InterconnectConfig &net)
    : graph(g), spec(sp), weights(w), eng(chip, net), basePart(part)
{
    panicIf(spec.shards != part.shards,
            "fault spec and partition disagree on the shard count");
    ps = eng.compilePatchable(g, part);
    eng.rates(ps.compiled, baseRates);
    doneGraph.assign(g.size(), 0);
}

MachineShape
FaultSim::shape() const
{
    return {ps.compiled.shards, eng.chip().channelCount(),
            ps.compiled.links};
}

void
FaultSim::resetBinding()
{
    if (!bindingDirty)
        return;
    eng.recompilePartition(ps, basePart);
    bindingDirty = false;
}

double
FaultSim::healthyMakespan()
{
    resetBinding();
    return ps.compiled.schedule.replay(baseRates, scratch);
}

DegradedOutcome
FaultSim::run(const FaultTrace &trace, obs::ScenarioTrace *viz)
{
    if (sim::Error e = checkTrace(trace, shape()))
        panic(e.message());
    resetBinding();
    ++statScenarios;
    if (viz != nullptr) {
        viz->segments.clear();
        viz->marks.clear();
        viz->resourceNames.clear();
        const sim::CompiledSchedule &sched = ps.compiled.schedule;
        viz->resourceNames.reserve(sched.resourceCount());
        for (std::size_t r = 0; r < sched.resourceCount(); ++r)
            viz->resourceNames.push_back(
                sched.resourceName(static_cast<sim::ResourceId>(r)));
    }

    // Earliest failure per chip, in time order; later failures of an
    // already-dead chip are no-ops.
    struct Fail
    {
        double at;
        std::uint32_t shard;
    };
    std::vector<Fail> fails;
    for (const FaultEvent &e : trace.events)
        if (e.kind == FaultKind::ChipFail)
            fails.push_back({e.atSec, e.shard});
    std::stable_sort(fails.begin(), fails.end(),
                     [](const Fail &a, const Fail &b) {
                         return a.at < b.at;
                     });

    DegradedOutcome out;
    std::fill(doneGraph.begin(), doneGraph.end(), std::uint8_t{0});
    std::vector<char> alive(ps.compiled.shards, 1);
    double tBase = 0.0;
    bool anyDone = false;
    Partition cur = basePart;

    const auto schedMask = [&]() -> const std::uint8_t * {
        if (!anyDone)
            return nullptr;
        doneSched.assign(ps.compiled.schedule.taskCount(), 0);
        for (std::uint32_t t = 0; t < graph.size(); ++t)
            doneSched[ps.newId[t]] = doneGraph[t];
        // A transfer re-ships only when its value has not been
        // produced yet; already-produced values moved in the
        // migration-bytes accounting.
        constexpr sim::TaskId kUnset = ~sim::TaskId{0};
        for (std::size_t j = 0; j < ps.transferId.size(); ++j)
            if (ps.transferId[j] != kUnset)
                doneSched[ps.transferId[j]] =
                    doneGraph[ps.part.cutEdges[j].src];
        return doneSched.data();
    };

    // One replay segment, observed or not: the traced twin is
    // bit-identical to replayPiecewise, so control flow (and the
    // outcome) cannot depend on whether a viz is attached.
    const auto segment = [&](const sim::RateEpochs &ep) {
        if (viz == nullptr)
            return ps.compiled.schedule.replayPiecewise(
                baseRates, ep, schedMask(), scratch);
        obs::TraceSegment seg;
        seg.baseSec = tBase;
        seg.epochs = ep;
        const double m = obs::replayPiecewiseTraced(
            ps.compiled.schedule, baseRates, ep, schedMask(), scratch,
            seg.buf);
        viz->segments.push_back(std::move(seg));
        return m;
    };
    const auto account = [&](const DegradedOutcome &o) {
        statCompleted += o.completed ? 1 : 0;
        statFailovers += o.failovers;
        statMigratedBytes += o.migratedBytes;
    };

    for (const Fail &f : fails) {
        if (!alive[f.shard])
            continue;
        const sim::RateEpochs ep =
            buildEpochs(trace, ps.compiled, tBase);
        const double m = segment(ep);
        const double tfRel = f.at - tBase;
        if (m <= tfRel) {
            // The run finished before this chip died.
            out.makespan = tBase + m;
            account(out);
            return out;
        }
        // Salvage: everything that finished before the failure stays
        // finished (tfRel < 0 means the chip died during a migration
        // pause — no new progress to salvage).
        if (tfRel >= 0.0) {
            for (std::uint32_t t = 0; t < graph.size(); ++t)
                if (scratch.finish[ps.newId[t]] <= tfRel)
                    doneGraph[t] = 1;
            anyDone = true;
        }
        if (viz != nullptr) {
            // The plan from the cut on is void — the next segment
            // re-schedules it. A negative cut (death mid-pause)
            // voids the whole segment.
            viz->segments.back().cutSec = tfRel >= 0.0 ? tfRel : 0.0;
            viz->marks.push_back(
                {"chip " + std::to_string(f.shard) + " failed", f.at,
                 0.0});
        }
        alive[f.shard] = 0;
        std::size_t survivors = 0;
        for (char a : alive)
            survivors += a != 0;
        if (survivors == 0) {
            out.completed = false;
            out.makespan = std::numeric_limits<double>::infinity();
            account(out);
            return out;
        }
        sim::Error err = planFailover(graph, spec, cur, f.shard, alive,
                                      doneGraph.data(), weights, plan);
        panicIf(bool(err), "failover planning failed unexpectedly");
        eng.recompilePartition(ps, plan.part);
        bindingDirty = true;
        cur = plan.part;
        const double mig =
            migrationSeconds(plan.migrationBytes, eng.interconnect(),
                             survivors);
        ++out.failovers;
        out.migratedBytes += plan.migrationBytes;
        out.migrationSec += mig;
        if (viz != nullptr && mig > 0.0)
            viz->marks.push_back(
                {"migrate " + std::to_string(plan.migrationBytes) +
                     " B off chip " + std::to_string(f.shard),
                 std::max(tBase, f.at), mig});
        tBase = std::max(tBase, f.at) + mig;
    }

    const sim::RateEpochs ep =
        buildEpochs(trace, ps.compiled, tBase);
    const double m = segment(ep);
    out.makespan = tBase + m;
    account(out);
    return out;
}

void
FaultSim::staticDegradedMakespans(const FaultTrace *traces,
                                  std::size_t n, double *out)
{
    resetBinding();
    const std::size_t nres = ps.compiled.schedule.resourceCount();
    const std::size_t chipRes = ps.compiled.shards * ps.compiled.perChip;
    if (staticRates.size() < n)
        staticRates.resize(n);
    std::vector<double> mult(nres);
    for (std::size_t i = 0; i < n; ++i) {
        if (sim::Error e = checkTrace(traces[i], shape()))
            panic(e.message());
        // Fold every degrade to time 0: accumulate each resource's
        // multiplier product first (the fold buildEpochs performs),
        // then scale the base rate by it exactly once — rate * m is
        // the arithmetic replayPiecewise's epoch path performs, so
        // each lane is bit-identical to the piecewise evaluation of
        // the same scenario. (Scaling per event instead would
        // associate the products differently and drift in the last
        // bit.)
        std::fill(mult.begin(), mult.end(), 1.0);
        for (const FaultEvent &e : traces[i].events) {
            std::size_t res;
            switch (e.kind) {
            case FaultKind::ChannelDegrade:
                res = std::size_t{e.shard} * ps.compiled.perChip +
                      e.channel;
                break;
            case FaultKind::LinkDegrade:
                res = chipRes + e.channel;
                break;
            default:
                panic("static degraded replay accepts only "
                      "channel/link degrade events");
            }
            panicIf(res >= nres,
                    "degrade event outside the machine shape");
            mult[res] *= e.factor;
        }
        sim::ReplayRates &r = staticRates[i];
        r = baseRates;
        // x * 1.0 == x exactly, so untouched resources keep their
        // base rate to the bit.
        for (std::size_t j = 0; j < nres; ++j)
            r.bytesPerSec[j] *= mult[j];
    }
    ps.compiled.schedule.replayMany(staticRates.data(), n, batch);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = batch.makespan[i];
    // Degrade-only scenarios always complete (no chip ever dies).
    statScenarios += n;
    statCompleted += n;
}

void
FaultSim::exportMetrics(obs::MetricsRegistry &m,
                        const std::string &prefix) const
{
    m.count(prefix + "scenarios_run", statScenarios);
    m.count(prefix + "scenarios_completed", statCompleted);
    m.count(prefix + "failovers", statFailovers);
    m.count(prefix + "migrated_bytes", statMigratedBytes);
}

} // namespace ciflow::fault
