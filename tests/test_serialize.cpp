/**
 * @file
 * Round-trip and validation tests for binary serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/serialize.h"

using namespace ciflow;

namespace
{

CkksParams
smallParams()
{
    CkksParams p;
    p.logN = 10;
    p.maxLevel = 3;
    p.dnum = 2;
    return p;
}

} // namespace

class SerializeTest : public ::testing::Test
{
  protected:
    SerializeTest()
        : ctx(smallParams()), enc(ctx), keygen(ctx, 55),
          sk(keygen.secretKey()), pk(keygen.publicKey(sk)),
          encryptor(ctx, pk), decryptor(ctx, sk)
    {
    }

    CkksContext ctx;
    Encoder enc;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    Encryptor encryptor;
    Decryptor decryptor;
};

TEST_F(SerializeTest, PolyRoundTrip)
{
    std::vector<double> z(enc.slots(), 0.75);
    RnsPoly p = enc.encode(z, ctx.maxLevel());
    std::stringstream ss;
    writePoly(ss, p);
    RnsPoly q = readPoly(ss);
    EXPECT_EQ(p, q);
}

TEST_F(SerializeTest, EvalDomainPolyRoundTrip)
{
    RnsPoly p = enc.encode(std::vector<double>{1.0, 2.0}, 1);
    p.toEval(ctx.ntt());
    std::stringstream ss;
    writePoly(ss, p);
    RnsPoly q = readPoly(ss);
    EXPECT_EQ(q.domain(), Domain::Eval);
    EXPECT_EQ(p, q);
}

TEST_F(SerializeTest, CiphertextRoundTripDecrypts)
{
    std::vector<double> z(enc.slots());
    for (std::size_t i = 0; i < z.size(); ++i)
        z[i] = 0.001 * static_cast<double>(i % 31);
    Ciphertext ct =
        encryptor.encrypt(enc.encode(z, ctx.maxLevel()), ctx.scale());

    std::stringstream ss;
    writeCiphertext(ss, ct);
    Ciphertext back = readCiphertext(ss);
    EXPECT_EQ(back.level, ct.level);
    EXPECT_DOUBLE_EQ(back.scale, ct.scale);
    EXPECT_EQ(back.c0, ct.c0);
    EXPECT_EQ(back.c1, ct.c1);

    auto got = enc.decode(decryptor.decrypt(back), back.scale);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(got[i].real(), z[i], 1e-5);
}

TEST_F(SerializeTest, EvalKeyRoundTripStillSwitches)
{
    EvalKey rlk = keygen.relinKey(sk);
    std::stringstream ss;
    writeEvalKey(ss, rlk);
    EvalKey back = readEvalKey(ss);
    ASSERT_EQ(back.digits.size(), rlk.digits.size());
    for (std::size_t j = 0; j < rlk.digits.size(); ++j) {
        EXPECT_EQ(back.digits[j].a, rlk.digits[j].a);
        EXPECT_EQ(back.digits[j].b, rlk.digits[j].b);
    }

    // Use the deserialized key in a real multiply.
    Evaluator eval(ctx);
    std::vector<double> z(enc.slots(), 0.5);
    Ciphertext ct =
        encryptor.encrypt(enc.encode(z, ctx.maxLevel()), ctx.scale());
    Ciphertext sq = eval.rescale(eval.multiply(ct, ct, back));
    auto got = enc.decode(decryptor.decrypt(sq), sq.scale);
    EXPECT_NEAR(got[0].real(), 0.25, 1e-4);
}

TEST_F(SerializeTest, CompressedKeyRoundTripAndSize)
{
    RnsPoly s2 = sk.s;
    s2.mulPointwiseInPlace(sk.s);
    CompressedEvalKey cevk = keygen.makeCompressedEvalKey(sk, s2);

    std::stringstream css, fss;
    writeCompressedEvalKey(css, cevk);
    writeEvalKey(fss, expandEvalKey(ctx, cevk));
    // Compressed stream is about half the full key stream.
    EXPECT_LT(css.str().size(), fss.str().size() * 6 / 10);

    CompressedEvalKey back = readCompressedEvalKey(css);
    ASSERT_EQ(back.digits.size(), cevk.digits.size());
    for (std::size_t j = 0; j < cevk.digits.size(); ++j) {
        EXPECT_EQ(back.digits[j].seed, cevk.digits[j].seed);
        EXPECT_EQ(back.digits[j].b, cevk.digits[j].b);
    }
    // Expansion of the deserialized key matches the original's.
    EvalKey e1 = expandEvalKey(ctx, cevk);
    EvalKey e2 = expandEvalKey(ctx, back);
    for (std::size_t j = 0; j < e1.digits.size(); ++j)
        EXPECT_EQ(e1.digits[j].a, e2.digits[j].a);
}

TEST_F(SerializeTest, GaloisKeysRoundTrip)
{
    GaloisKeys gk = keygen.galoisKeys(sk, {1, 5}, true);
    std::stringstream ss;
    writeGaloisKeys(ss, gk);
    GaloisKeys back = readGaloisKeys(ss);
    ASSERT_EQ(back.keys.size(), gk.keys.size());
    for (const auto &[g, evk] : gk.keys) {
        auto it = back.keys.find(g);
        ASSERT_NE(it, back.keys.end());
        EXPECT_EQ(it->second.digits[0].b, evk.digits[0].b);
    }
}

TEST_F(SerializeTest, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "not a ciflow stream at all, definitely";
    EXPECT_DEATH(readPoly(ss), "");
}

TEST_F(SerializeTest, RejectsTruncatedStream)
{
    RnsPoly p = enc.encode(std::vector<double>{1.0}, 1);
    std::stringstream ss;
    writePoly(ss, p);
    std::string bytes = ss.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_DEATH(readPoly(truncated), "");
}

TEST_F(SerializeTest, RejectsUnreducedResidues)
{
    RnsPoly p = enc.encode(std::vector<double>{1.0}, 0);
    std::stringstream ss;
    writePoly(ss, p);
    std::string bytes = ss.str();
    // Corrupt one residue to be >= modulus: flip high bits of the last
    // 8 payload bytes.
    for (std::size_t i = bytes.size() - 8; i < bytes.size(); ++i)
        bytes[i] = static_cast<char>(0xff);
    std::stringstream corrupted(bytes);
    EXPECT_DEATH(readPoly(corrupted), "");
}
