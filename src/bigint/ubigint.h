/**
 * @file
 * UBigInt: a small arbitrary-precision unsigned integer.
 *
 * ciflow needs exact multi-word arithmetic in a few *non-hot* places:
 *   - CRT reconstruction of RNS polynomials during CKKS decryption,
 *   - precomputation of hybrid key-switching constants
 *     (P mod q_i, F_j mod q_i, punctured products),
 *   - exact references for the approximate basis-conversion tests.
 *
 * The representation is a little-endian vector of 64-bit limbs with no
 * leading zero limbs (zero is an empty vector). Only the operations the
 * library needs are provided; this is deliberately not a general bignum.
 */

#ifndef CIFLOW_BIGINT_UBIGINT_H
#define CIFLOW_BIGINT_UBIGINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ciflow
{

/** Arbitrary-precision unsigned integer (little-endian 64-bit limbs). */
class UBigInt
{
  public:
    /** Constructs zero. */
    UBigInt() = default;

    /** Constructs from a single 64-bit value. */
    UBigInt(std::uint64_t v);

    /** Constructs from a decimal string (digits only). */
    static UBigInt fromDecimal(const std::string &s);

    /** True when the value is zero. */
    bool isZero() const { return limbs.empty(); }

    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;

    /** Value of bit i (0 = LSB). */
    bool bit(std::size_t i) const;

    /** Comparison: negative/zero/positive like memcmp. */
    int compare(const UBigInt &o) const;

    bool operator==(const UBigInt &o) const { return compare(o) == 0; }
    bool operator!=(const UBigInt &o) const { return compare(o) != 0; }
    bool operator<(const UBigInt &o) const { return compare(o) < 0; }
    bool operator<=(const UBigInt &o) const { return compare(o) <= 0; }
    bool operator>(const UBigInt &o) const { return compare(o) > 0; }
    bool operator>=(const UBigInt &o) const { return compare(o) >= 0; }

    UBigInt operator+(const UBigInt &o) const;
    /** Subtraction; panics if o > *this (values are unsigned). */
    UBigInt operator-(const UBigInt &o) const;
    UBigInt operator*(const UBigInt &o) const;
    /** Quotient of schoolbook long division. */
    UBigInt operator/(const UBigInt &o) const;
    /** Remainder of schoolbook long division. */
    UBigInt operator%(const UBigInt &o) const;

    UBigInt &operator+=(const UBigInt &o) { return *this = *this + o; }
    UBigInt &operator-=(const UBigInt &o) { return *this = *this - o; }
    UBigInt &operator*=(const UBigInt &o) { return *this = *this * o; }

    /** Left shift by an arbitrary bit count. */
    UBigInt shiftLeft(std::size_t bits) const;
    /** Right shift by an arbitrary bit count. */
    UBigInt shiftRight(std::size_t bits) const;

    /** Reduce modulo a 64-bit modulus. */
    std::uint64_t mod64(std::uint64_t m) const;

    /** Quotient and remainder in one pass. */
    void divMod(const UBigInt &d, UBigInt &q, UBigInt &r) const;

    /** Approximate conversion to double (may overflow to inf). */
    double toDouble() const;

    /** Lowest 64 bits of the value. */
    std::uint64_t low64() const { return limbs.empty() ? 0 : limbs[0]; }

    /** Decimal string rendering. */
    std::string toDecimal() const;

    /** Access to raw limbs (testing). */
    const std::vector<std::uint64_t> &rawLimbs() const { return limbs; }

  private:
    void trim();

    std::vector<std::uint64_t> limbs;
};

/** Product of a list of 64-bit moduli as a UBigInt. */
UBigInt productOf(const std::vector<std::uint64_t> &values);

} // namespace ciflow

#endif // CIFLOW_BIGINT_UBIGINT_H
