/**
 * @file
 * Reproduces paper Figure 5: BTS3 HKS runtime versus bandwidth with
 * evks streamed from off-chip (solid) against evks pre-loaded on-chip
 * (dotted), for all three dataflows, plus the bandwidth at which
 * streamed OC recovers the baseline (paper: 45.62 GB/s). The six
 * experiments share one ExperimentRunner; each sweep fans out on its
 * thread pool.
 */

#include <cstdio>

#include "bench_util.h"
#include "rpu/runner.h"

using namespace ciflow;

int
main()
{
    benchutil::header("Figure 5: BTS3 runtime, evks streamed vs on-chip");

    const HksParams &b = benchmarkByName("BTS3");
    ExperimentRunner runner;
    benchutil::printStreamVsOnchipCsv(runner, b,
                                      paperBandwidthSweepExtended());

    const double base = baselineRuntime(runner, b);
    auto oc_off =
        runner.experiment(b, Dataflow::OC, MemoryConfig{32ull << 20, false});
    double bw_stream = bandwidthToMatch(*oc_off, base);
    std::printf("\nOC (streamed) matches the baseline at %.2f GB/s "
                "(paper: 45.62 GB/s; on-chip OCbase is 32 GB/s)\n",
                bw_stream);
    std::printf("Streaming evks drops on-chip SRAM from 392 MiB to "
                "32 MiB (12.25x).\n");
    return 0;
}
