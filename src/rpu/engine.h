/**
 * @file
 * RPU front end to the generic discrete-event core (src/sim/).
 *
 * Mirrors the paper's simulation framework (§V-C) and generalizes it:
 * memory tasks and compute tasks sit in per-resource in-order queues;
 * the head of each queue issues once all its dependencies have
 * completed, and the resources run concurrently so independent
 * off-chip transfers are masked by computation. Because the builders
 * emit dependencies that always point to earlier tasks, the earliest
 * unprocessed task is always issuable and the simulation cannot
 * deadlock — the invariant now lives in sim::EventQueue, and
 * TaskGraph::validate() re-checks it on entry instead of assuming it.
 *
 * Resource mapping, driven by RpuConfig:
 *  - N DRAM channels, each serving bandwidth/N; memory tasks are
 *    placed by ChannelPolicy (interleaved, or evk streams on a
 *    dedicated channel).
 *  - one fused compute pipe (paper configuration: a compute task costs
 *    max(arithmetic, shuffle) pipe time derived from the B1K
 *    instruction counts), or split arithmetic/shuffle pipes that
 *    overlap across tasks.
 *
 * With one channel and the fused pipe, results are bit-identical to
 * the original hard-coded two-queue engine (asserted by
 * tests/test_sim_core.cpp).
 */

#ifndef CIFLOW_RPU_ENGINE_H
#define CIFLOW_RPU_ENGINE_H

#include <vector>

#include "hksflow/task.h"
#include "rpu/config.h"
#include "rpu/isa.h"
#include "sim/event_queue.h"

namespace ciflow
{

/** Aggregate results of one simulated HKS execution. */
struct SimStats
{
    /** End-to-end runtime in seconds. */
    double runtime = 0.0;
    /** Seconds of DRAM-channel busy time, summed over channels. */
    double memBusy = 0.0;
    /** Seconds of compute busy time, summed over pipes. */
    double compBusy = 0.0;
    /** DRAM channels simulated. */
    std::size_t memChannels = 1;
    /** Compute pipes simulated (1 fused, 2 split). */
    std::size_t computePipes = 1;
    /** Fraction of aggregate compute capacity left idle. */
    double
    computeIdleFraction() const
    {
        return runtime > 0
                   ? 1.0 - compBusy / (runtime * static_cast<double>(
                                                     computePipes))
                   : 0.0;
    }
    /** Fraction of aggregate DRAM-channel capacity left idle. */
    double
    memIdleFraction() const
    {
        return runtime > 0
                   ? 1.0 - memBusy / (runtime * static_cast<double>(
                                                    memChannels))
                   : 0.0;
    }
    /** DRAM bytes moved. */
    std::uint64_t trafficBytes = 0;
    /** Total modular operations executed. */
    std::uint64_t modOps = 0;
    /** Per-resource utilization (channels first, then pipes). */
    std::vector<sim::ResourceUse> resources;
    /** Runtime in milliseconds (reporting convenience). */
    double runtimeMs() const { return runtime * 1e3; }
};

/** Simulates a TaskGraph on an RpuConfig. */
class RpuEngine
{
  public:
    explicit RpuEngine(const RpuConfig &cfg) : cfg(cfg) {}

    /** Run the graph to completion and return timing statistics. */
    SimStats run(const TaskGraph &g) const;

    /** Arithmetic-pipe seconds of one compute task. */
    double arithTaskSeconds(const Task &t) const;

    /** Shuffle-pipe seconds of one compute task. */
    double shuffleTaskSeconds(const Task &t, const CodeGen &cg) const;

    /** Duration of one compute task on the fused pipe. */
    double computeTaskSeconds(const Task &t, const CodeGen &cg) const;

    /** Duration of one memory task on one channel. */
    double memTaskSeconds(const Task &t) const;

    const RpuConfig &config() const { return cfg; }

  private:
    RpuConfig cfg;
};

} // namespace ciflow

#endif // CIFLOW_RPU_ENGINE_H
