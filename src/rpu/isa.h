/**
 * @file
 * B1K instruction set definition and per-stage code generation model.
 *
 * The RPU paper's B512 ISA was modified by CiFlow to a 1K vector length
 * ("B1K ... consists of 28 instructions ranging from general purpose
 * point-wise arithmetic operations to HE-specific shuffle instructions
 * for (i)NTT kernels", §V-A). We reproduce that interface: 28 opcodes in
 * four classes (scalar control, vector memory, vector arithmetic, and
 * shuffle), plus a CodeGen that converts an HKS stage task into
 * instruction counts for the three decoupled issue queues.
 *
 * The instruction counts ground the engine's cost model: a vector
 * instruction occupies a lane pipe for VL/lanes cycles, so a task's
 * compute time is instructions x VL / (lanes x f), which for arithmetic
 * equals modOps / MODOPS.
 */

#ifndef CIFLOW_RPU_ISA_H
#define CIFLOW_RPU_ISA_H

#include <cstdint>
#include <string>
#include <vector>

#include "hksflow/task.h"

namespace ciflow
{

/** Issue queue classes of the decoupled RPU frontend. */
enum class IssueQueue : std::uint8_t { Compute, Shuffle, Memory };

/** The 28 B1K opcodes. */
enum class B1kOp : std::uint8_t {
    // Scalar / control (frontend).
    SLD,    ///< scalar load
    SST,    ///< scalar store
    SADD,   ///< scalar add
    SMUL,   ///< scalar multiply
    BNZ,    ///< branch if nonzero
    CSRW,   ///< write modulus/control register
    FENCE,  ///< queue synchronization barrier
    // Vector memory.
    VLD,    ///< vector load from data memory
    VST,    ///< vector store to data memory
    VLDK,   ///< vector load from key memory
    VPREF,  ///< prefetch (decoupled DRAM fetch)
    // Vector modular arithmetic (lane pipes).
    VMADD,  ///< modular add
    VMSUB,  ///< modular subtract
    VMNEG,  ///< modular negate
    VMMUL,  ///< modular multiply (Montgomery/Barrett pipe)
    VMMACC, ///< modular multiply-accumulate
    VMSMUL, ///< modular multiply by scalar
    VBFLY,  ///< CT butterfly (mul + add/sub fused)
    VIBFLY, ///< GS butterfly (add/sub + mul fused)
    VMODSW, ///< modulus switch (rescale helper)
    VRED,   ///< tree reduction within vector
    VSEL,   ///< select/blend
    VCMP,   ///< compare (for conditional subtract)
    // Shuffle pipe.
    VSHUF,  ///< arbitrary crossbar shuffle
    VROTV,  ///< vector rotate
    VBREV,  ///< bit-reverse permutation
    VTRN,   ///< transpose step
    VPACK,  ///< pack/unpack tower interleave
};

/** Number of distinct opcodes (must stay 28 to match B1K). */
constexpr std::size_t kB1kOpCount = 28;

/** Mnemonic for an opcode. */
const char *b1kMnemonic(B1kOp op);

/** Which issue queue an opcode is dispatched to. */
IssueQueue b1kQueue(B1kOp op);

/** Instruction counts for one task, split by issue queue. */
struct InstrCounts
{
    std::uint64_t compute = 0;
    std::uint64_t shuffle = 0;
    std::uint64_t memory = 0;

    std::uint64_t
    total() const
    {
        return compute + shuffle + memory;
    }

    InstrCounts &
    operator+=(const InstrCounts &o)
    {
        compute += o.compute;
        shuffle += o.shuffle;
        memory += o.memory;
        return *this;
    }
};

/** Converts HKS stage tasks into B1K instruction counts. */
class CodeGen
{
  public:
    /** @param vectorLen  B1K vector length (1024) */
    explicit CodeGen(std::size_t vectorLen);

    /** Vector instructions needed for `elems` pointwise lane ops. */
    std::uint64_t vectorInstrs(std::uint64_t elems) const;

    /**
     * Instruction counts for a compute task: modOps map to arithmetic
     * instructions (pointwise ops are one lane-op per element; butterfly
     * instructions retire 3 modOps each), shuffleOps map to shuffle
     * instructions.
     */
    InstrCounts forComputeTask(const Task &t) const;

    /** Instruction counts for a memory task (VLD/VST per vector). */
    InstrCounts forMemTask(const Task &t) const;

    /** Counts for an entire graph. */
    InstrCounts forGraph(const TaskGraph &g) const;

    std::size_t vectorLen() const { return vl; }

  private:
    std::size_t vl;
};

} // namespace ciflow

#endif // CIFLOW_RPU_ISA_H
