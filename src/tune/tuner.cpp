#include "tune/tuner.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/rng.h"
#include "fault/monte_carlo.h"
#include "shard/placement_search.h"

namespace ciflow::tune
{

const char *
strategyName(Strategy s)
{
    switch (s) {
    case Strategy::ExhaustiveGrid:
        return "grid";
    case Strategy::CoordinateDescent:
        return "cd";
    case Strategy::RandomRestartHillClimb:
        return "hillclimb";
    }
    return "?";
}

double
TuneResult::evalFraction() const
{
    return spaceSize > 0 ? static_cast<double>(evaluations) /
                               static_cast<double>(spaceSize)
                         : 0.0;
}

std::vector<TunedPoint>
paretoFrontier(const std::vector<TunedPoint> &pts)
{
    std::vector<TunedPoint> out;
    for (const TunedPoint &p : pts) {
        bool dominated = false;
        for (const TunedPoint &q : pts)
            if (&q != &p && q.m.dominates(p.m)) {
                dominated = true;
                break;
            }
        if (!dominated)
            out.push_back(p);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TunedPoint &a, const TunedPoint &b) {
                         return a.m.runtime < b.m.runtime;
                     });
    return out;
}

Tuner::Tuner(ExperimentRunner &runner_, const HksParams &par_,
             TuneSpace space)
    : runner(runner_), par(par_), sp(std::move(space))
{
    sp.validate();
}

Tuner::Tuner(ExperimentRunner &runner_, const HksParams &par_,
             TuneSpace space, const FaultObjective &objective)
    : runner(runner_), par(par_), sp(std::move(space)),
      fobj(objective)
{
    sp.validate();
    panicIf(fobj->scenarios == 0,
            "fault objective needs at least one scenario");
}

EvalKey
Tuner::keyOf(const TunePoint &p) const
{
    EvalKey key;
    key.graph = ExperimentKey::of(par, p.dataflow, sp.memoryConfig(p));
    key.bandwidthGBps = p.bandwidthGBps;
    key.modopsMult = p.modopsMult;
    key.memChannels = p.memChannels;
    // Canonicalize knobs that are vacuous at this point so physically
    // identical configurations share one cache entry: topology and
    // partition strategy do nothing without a cut, channel policy and
    // skew do nothing on a single channel.
    if (p.memChannels > 1) {
        key.channelSkew = p.channelSkew;
        key.channelPolicy = p.channelPolicy;
    }
    if (p.shards > 1) {
        key.shards = p.shards;
        key.topology = p.topology;
        key.strategy = p.strategy;
    }
    return key;
}

Measurement
Tuner::evaluate(const std::vector<std::size_t> &idx)
{
    const TunePoint p = sp.at(idx);
    const EvalKey key = keyOf(p);
    Measurement m;
    if (cache.lookup(key, m))
        return m;
    m = evaluateUncached(p);
    cache.insert(key, m);
    return m;
}

std::vector<Measurement>
Tuner::evaluateAll(const std::vector<std::vector<std::size_t>> &pts)
{
    std::vector<Measurement> res(pts.size());
    // Deduplicate by *canonical key*: tuples differing only in vacuous
    // knobs evaluate once and copy the result, so no two concurrent
    // jobs race to fill the same cache entry and the hit/miss
    // accounting is deterministic under parallelism.
    std::unordered_map<EvalKey, std::size_t, EvalKeyHash> first;
    std::vector<std::size_t> owner(pts.size());
    // Distinct single-chip keys, grouped by everything that shapes the
    // graph or the compiled layout: members of one group differ only
    // in rate knobs and replay as one batch. Multi-chip points keep
    // scalar per-point jobs (their partitions change the layout).
    std::unordered_map<EvalKey, std::vector<std::size_t>, EvalKeyHash>
        groups;
    std::vector<std::size_t> scalar;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const TunePoint p = sp.at(pts[i]);
        const auto [it, inserted] = first.emplace(keyOf(p), i);
        owner[i] = it->second;
        if (!inserted)
            continue;
        // Fault-objective points always go scalar: their score is a
        // Monte Carlo scenario sweep, not one replay a batch could
        // serve.
        if (p.shards > 1 || fobj) {
            scalar.push_back(i);
            continue;
        }
        // The group key: the canonical key with every rate knob AND
        // every channel-layout knob pinned, so one group holds all
        // single-chip points of one graph (benchmark, dataflow,
        // capacity, evk residency). Members spanning channel layouts
        // are layout-adjacent: evaluateBatch sorts them by layout and
        // routes multi-layout groups through the patch-based sweep —
        // one schedule rebound in place — instead of one compile per
        // layout.
        EvalKey gk = keyOf(p);
        gk.bandwidthGBps = 0.0;
        gk.modopsMult = 0.0;
        gk.channelSkew = 1.0;
        gk.memChannels = 1;
        gk.channelPolicy = ChannelPolicy::Interleave;
        groups[gk].push_back(i);
    }
    std::vector<std::function<void()>> jobs;
    jobs.reserve(groups.size() + scalar.size());
    for (auto &[gk, members] : groups) {
        const std::vector<std::size_t> &m = members;
        jobs.push_back(
            [this, &res, &pts, &m] { evaluateBatch(m, pts, res); });
    }
    for (std::size_t i : scalar)
        jobs.push_back(
            [this, &res, &pts, i] { res[i] = evaluate(pts[i]); });
    runner.runAll(jobs);
    for (std::size_t i = 0; i < pts.size(); ++i)
        res[i] = res[owner[i]];
    return res;
}

void
Tuner::evaluateBatch(const std::vector<std::size_t> &members,
                     const std::vector<std::vector<std::size_t>> &pts,
                     std::vector<Measurement> &res)
{
    // Serve cached members, collect the fresh ones.
    std::vector<std::size_t> fresh;
    for (std::size_t i : members) {
        const TunePoint p = sp.at(pts[i]);
        Measurement m;
        if (cache.lookup(keyOf(p), m))
            res[i] = m;
        else
            fresh.push_back(i);
    }
    if (fresh.empty())
        return;
    // All fresh members share one graph; they may span channel
    // layouts. Sort by layout so equal layouts form consecutive
    // replayMany runs (stable, so rate order within a layout is
    // preserved), then evaluate single-layout sets through the plain
    // batch and layout-crossing sets through the patch-based sweep:
    // one schedule, rebound in place between runs. A patched binding
    // is bit-identical to a fresh compile of its layout, so each
    // result matches evaluateUncached on that point either way.
    const TunePoint p0 = sp.at(pts[fresh[0]]);
    const std::shared_ptr<const HksExperiment> exp =
        runner.experiment(par, p0.dataflow, sp.memoryConfig(p0));
    std::stable_sort(
        fresh.begin(), fresh.end(),
        [this, &pts](std::size_t a, std::size_t b) {
            const TunePoint pa = sp.at(pts[a]);
            const TunePoint pb = sp.at(pts[b]);
            if (pa.memChannels != pb.memChannels)
                return pa.memChannels < pb.memChannels;
            return pa.channelPolicy < pb.channelPolicy;
        });
    std::vector<RpuConfig> cfgs;
    cfgs.reserve(fresh.size());
    bool multi_layout = false;
    for (std::size_t i : fresh) {
        cfgs.push_back(sp.chipConfig(sp.at(pts[i])));
        if (!(RpuLayout::of(cfgs.back()) ==
              RpuLayout::of(cfgs.front())))
            multi_layout = true;
    }
    std::vector<double> runtimes(fresh.size());
    if (multi_layout) {
        LayoutSweep sweep;
        exp->simulateRuntimeMany(cfgs.data(), cfgs.size(),
                                 runtimes.data(), sweep);
        cache.notePatched(sweep.patchedEvals);
        cache.noteBatchLanes(sweep.batchedPoints, sweep.laneSlots);
    } else {
        exp->simulateRuntimeMany(cfgs.data(), cfgs.size(),
                                 runtimes.data());
        // The plain batch path walks ceil(n / kBatchLanes) blocks of
        // kBatchLanes slots each; record the dispatch so occupancy
        // covers both batch routes.
        cache.noteBatchLanes(cfgs.size(),
                             (cfgs.size() + sim::kBatchLanes - 1) /
                                 sim::kBatchLanes * sim::kBatchLanes);
    }
    for (std::size_t j = 0; j < fresh.size(); ++j) {
        const std::size_t i = fresh[j];
        const TunePoint p = sp.at(pts[i]);
        Measurement m;
        m.runtime = runtimes[j];
        m.aggregateGBps =
            p.bandwidthGBps * static_cast<double>(p.shards);
        m.capacityBytes = static_cast<double>(p.dataMemBytes) *
                          static_cast<double>(p.shards);
        cache.insert(keyOf(p), m);
        res[i] = m;
    }
}

void
Tuner::exportMetrics(obs::MetricsRegistry &m,
                     const std::string &prefix) const
{
    m.count(prefix + "evaluations", cache.misses());
    m.count(prefix + "cache_hits", cache.hits());
    m.count(prefix + "patched_evals", cache.patchedEvals());
    const std::size_t pts = cache.batchedPoints();
    const std::size_t slots = cache.batchLaneSlots();
    m.count(prefix + "batched_points", pts);
    m.count(prefix + "batch_lane_slots", slots);
    m.gauge(prefix + "batch_lane_occupancy",
            slots == 0 ? 0.0
                       : static_cast<double>(pts) /
                             static_cast<double>(slots));
}

Measurement
Tuner::evaluateUncached(const TunePoint &p)
{
    const RpuConfig cfg = sp.chipConfig(p);
    const MemoryConfig mem = sp.memoryConfig(p);
    const std::shared_ptr<const HksExperiment> exp =
        runner.experiment(par, p.dataflow, mem);

    Measurement m;
    m.aggregateGBps = p.bandwidthGBps * static_cast<double>(p.shards);
    m.capacityBytes = static_cast<double>(p.dataMemBytes) *
                      static_cast<double>(p.shards);

    if (fobj) {
        // Fault-aware objective: partition for the point's shard
        // count (K=1 is the trivial one-shard cut), then score the
        // expected Monte Carlo makespan under the model, penalized by
        // survivability — a K that cannot survive its chip failures
        // scores +inf and loses to any graceful-degradation point.
        const std::vector<double> w =
            shard::taskWeights(exp->graph(), cfg);
        const shard::ShardSpec sspec = shard::placementShardSpec(
            par, p.shards, p.strategy, sp.imbalanceTol);
        const shard::Partition part =
            shard::partitionGraph(exp->graph(), sspec, w);
        shard::InterconnectConfig net = sp.interconnect;
        net.topology = p.topology;
        fault::FaultSim fs(exp->graph(), sspec, w, part, cfg, net);
        fault::McSpec mc;
        mc.model = fobj->model;
        mc.scenarios = fobj->scenarios;
        mc.seed = fobj->seed;
        const fault::McStats st = fault::monteCarlo(fs, mc);
        m.runtime =
            st.survivability > 0.0
                ? st.expectedMakespan / st.survivability
                : std::numeric_limits<double>::infinity();
        m.cutBytes = part.cutBytes;
        m.transferTasks = part.cutEdges.size();
        return m;
    }

    if (p.shards <= 1) {
        m.runtime = exp->simulate(cfg).runtime;
        return m;
    }

    // Multi-chip points delegate to the sharding layer through the
    // same per-point helpers searchPlacements uses, so a tuner shard
    // axis and a placement search agree bit-identically.
    const std::vector<double> w = shard::taskWeights(exp->graph(), cfg);
    const shard::Partition part = shard::partitionGraph(
        exp->graph(),
        shard::placementShardSpec(par, p.shards, p.strategy,
                                  sp.imbalanceTol),
        w);
    shard::InterconnectConfig net = sp.interconnect;
    net.topology = p.topology;
    const shard::PlacementEval e =
        shard::evaluatePlacement(exp->graph(), part, cfg, net);
    m.runtime = e.runtime;
    m.cutBytes = e.cutBytes;
    m.transferTasks = e.transferTasks;
    return m;
}

TuneResult
Tuner::tune(const TuneOptions &opts)
{
    const std::size_t hits0 = cache.hits();
    const std::size_t miss0 = cache.misses();

    // Per-call bookkeeping: every distinct point this call touched,
    // ordered by index tuple so packaging below is deterministic.
    std::mutex mu;
    std::map<std::vector<std::size_t>, Measurement> visited;
    auto record = [&](const std::vector<std::size_t> &idx) {
        const Measurement m = evaluate(idx);
        std::lock_guard<std::mutex> lk(mu);
        visited.emplace(idx, m);
        return m;
    };
    // One parallel fan-out over a batch of points (results in input
    // order), recorded into the visited map.
    auto batch = [&](const std::vector<std::vector<std::size_t>> &pts) {
        const std::vector<Measurement> res = evaluateAll(pts);
        std::lock_guard<std::mutex> lk(mu);
        for (std::size_t i = 0; i < pts.size(); ++i)
            visited.emplace(pts[i], res[i]);
        return res;
    };

    TuneResult r;
    r.strategy = opts.strategy;
    r.spaceSize = sp.pointCount();

    switch (opts.strategy) {
    case Strategy::ExhaustiveGrid: {
        std::vector<std::vector<std::size_t>> pts;
        pts.reserve(r.spaceSize);
        for (std::size_t f = 0; f < r.spaceSize; ++f)
            pts.push_back(sp.unflatten(f));
        batch(pts);
        r.rounds = 1;
        break;
    }
    case Strategy::CoordinateDescent: {
        std::vector<std::size_t> cur(kAxisCount, 0);
        double cur_rt = record(cur).runtime;
        for (std::size_t round = 0; round < opts.maxRounds; ++round) {
            r.rounds = round + 1;
            bool improved = false;
            for (std::size_t a = 0; a < kAxisCount; ++a) {
                const std::size_t n =
                    sp.axisSize(static_cast<Axis>(a));
                if (n < 2)
                    continue;
                std::vector<std::vector<std::size_t>> pts;
                pts.reserve(n);
                for (std::size_t v = 0; v < n; ++v) {
                    std::vector<std::size_t> idx = cur;
                    idx[a] = v;
                    pts.push_back(std::move(idx));
                }
                const std::vector<Measurement> res = batch(pts);
                // Axis argmin; only a strict improvement moves, and
                // ties keep the lowest index, so the walk is a total
                // order and terminates.
                std::size_t bestv = cur[a];
                double best_rt = cur_rt;
                for (std::size_t v = 0; v < n; ++v)
                    if (res[v].runtime < best_rt) {
                        bestv = v;
                        best_rt = res[v].runtime;
                    }
                if (bestv != cur[a]) {
                    cur[a] = bestv;
                    cur_rt = best_rt;
                    improved = true;
                }
            }
            if (!improved)
                break;
        }
        break;
    }
    case Strategy::RandomRestartHillClimb: {
        Rng rng(opts.seed);
        for (std::size_t rs = 0; rs < opts.restarts; ++rs) {
            r.rounds = rs + 1;
            std::vector<std::size_t> cur(kAxisCount);
            for (std::size_t a = 0; a < kAxisCount; ++a)
                cur[a] = static_cast<std::size_t>(rng.uniform(
                    sp.axisSize(static_cast<Axis>(a))));
            double cur_rt = record(cur).runtime;
            for (std::size_t step = 0; step < opts.maxClimbSteps;
                 ++step) {
                // +-1 moves along every axis, axis order then -1
                // before +1 — the deterministic neighbor order ties
                // break toward.
                std::vector<std::vector<std::size_t>> nbrs;
                for (std::size_t a = 0; a < kAxisCount; ++a) {
                    const std::size_t n =
                        sp.axisSize(static_cast<Axis>(a));
                    for (int dir : {-1, +1}) {
                        if ((dir < 0 && cur[a] == 0) ||
                            (dir > 0 && cur[a] + 1 >= n))
                            continue;
                        std::vector<std::size_t> idx = cur;
                        idx[a] = cur[a] + static_cast<std::size_t>(
                                              dir > 0 ? 1 : -1);
                        nbrs.push_back(std::move(idx));
                    }
                }
                if (nbrs.empty())
                    break;
                const std::vector<Measurement> res = batch(nbrs);
                std::size_t best = nbrs.size();
                double best_rt = cur_rt;
                for (std::size_t i = 0; i < nbrs.size(); ++i)
                    if (res[i].runtime < best_rt) {
                        best = i;
                        best_rt = res[i].runtime;
                    }
                if (best == nbrs.size())
                    break; // local optimum
                cur = nbrs[best];
                cur_rt = best_rt;
            }
        }
        break;
    }
    }

    r.evaluated.reserve(visited.size());
    for (const auto &[idx, m] : visited) {
        TunedPoint p;
        p.idx = idx;
        p.point = sp.at(idx);
        p.m = m;
        r.evaluated.push_back(std::move(p));
    }
    panicIf(r.evaluated.empty(), "tune() evaluated no points");
    const TunedPoint *best = &r.evaluated.front();
    for (const TunedPoint &p : r.evaluated)
        if (p.m.runtime < best->m.runtime)
            best = &p;
    r.best = *best;
    r.frontier = paretoFrontier(r.evaluated);
    r.evaluations = cache.misses() - miss0;
    r.cacheHits = cache.hits() - hits0;
    return r;
}

TuneSpace
ocBaseSpace()
{
    TuneSpace sp;
    sp.dataflows = {Dataflow::OC};
    sp.capacities = {32ull << 20};
    sp.bandwidths = paperBandwidthSweep();
    sp.evkOnChip = true;
    return sp;
}

TuneSpace
paperJointSpace(const HksParams &par, bool evk_on_chip)
{
    TuneSpace sp;
    sp.dataflows = {Dataflow::MP, Dataflow::DC, Dataflow::OC};
    sp.bandwidths = paperBandwidthSweep();
    sp.channelCounts = {1, 2, 4};
    sp.modopsMults = {1.0, 2.0};
    sp.evkOnChip = evk_on_chip;
    std::uint64_t need = 0;
    for (Dataflow d : sp.dataflows)
        need = std::max(need, minDataCapacity(par, d));
    sp.capacities.clear();
    for (std::uint64_t cap : {16ull << 20, 32ull << 20, 64ull << 20})
        if (cap >= need)
            sp.capacities.push_back(cap);
    if (sp.capacities.empty())
        sp.capacities = {need};
    return sp;
}

double
ocBaseBandwidth(Tuner &t, double target_runtime)
{
    const TuneSpace &sp = t.space();
    std::vector<std::vector<std::size_t>> pts;
    pts.reserve(sp.bandwidths.size());
    for (std::size_t i = 0; i < sp.bandwidths.size(); ++i) {
        std::vector<std::size_t> idx(kAxisCount, 0);
        idx[static_cast<std::size_t>(Axis::Bandwidth)] = i;
        pts.push_back(std::move(idx));
    }
    const std::vector<Measurement> res = t.evaluateAll(pts);
    std::vector<double> runtimes;
    runtimes.reserve(res.size());
    for (const Measurement &m : res)
        runtimes.push_back(m.runtime);
    return ocBaseFromGrid(sp.bandwidths, runtimes, target_runtime);
}

} // namespace ciflow::tune
