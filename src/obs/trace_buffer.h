/**
 * @file
 * TraceBuffer: the per-op timeline record a traced replay fills.
 *
 * Every perf claim upstream of this layer is a single makespan number;
 * attribution ("why is ARK at K=8 min-cut 4.19x faster?") needs the
 * schedule the replay recurrence actually computed. A traced replay
 * (obs/traced_replay.h) appends one TraceOp per executed op into a
 * preallocated TraceBuffer — dependency-ready time, service window,
 * visibility (post-latency) time, payload bytes, and the rate epoch in
 * effect at issue — which the analyses (obs/analysis.h) and the Chrome
 * trace exporter (obs/chrome_trace.h) then consume without ever
 * touching the sim layer again.
 *
 * The buffer is reset once per replay with the schedule's op count and
 * records with plain push_back into reserved storage, so a traced
 * replay allocates nothing per op (and nothing at all after the first
 * reset at a given capacity) — the same discipline as ReplayScratch.
 */

#ifndef CIFLOW_OBS_TRACE_BUFFER_H
#define CIFLOW_OBS_TRACE_BUFFER_H

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace ciflow::obs
{

/**
 * One executed op as the replay recurrence scheduled it. All times are
 * replay-local seconds, copied bit-exactly from the recurrence:
 * `start == max(resource free, ready)`, `finish == start + duration`
 * (the resource frees at `finish`), and `visible == finish +
 * postSeconds` (when dependents may observe the result). `epoch` is
 * the number of RateEpochs entries the op's resource had entered when
 * the op issued — 0 means full speed, and plain (non-piecewise) traced
 * replay always records 0.
 */
struct TraceOp
{
    /** Owning task. */
    sim::TaskId task = 0;
    /** Global op index into the schedule's CSR op arrays. */
    std::uint32_t op = 0;
    /** Resource the op was served on. */
    sim::ResourceId resource = 0;
    /** Rate epochs entered on `resource` at issue (0 = full speed). */
    std::uint32_t epoch = 0;
    /** When the op's dependencies had all resolved. */
    double ready = 0.0;
    /** Service start: max(resource free time, ready). */
    double start = 0.0;
    /** Service end; the resource is busy over [start, finish). */
    double finish = 0.0;
    /** finish + postSeconds: when dependents may observe the result. */
    double visible = 0.0;
    /** Bandwidth-scaled payload numerator (0 for pure compute). */
    double bytes = 0.0;
};

/**
 * A replay timeline: one TraceOp per executed op, in issue (task,
 * then op) order, plus the replay's makespan. Issue order is the
 * property the analyses lean on — ops of one resource appear in
 * service order, so "previous record on my resource" is the op whose
 * finish my start may be tight against.
 */
struct TraceBuffer
{
    /** Records in issue order (task-major, op-minor). */
    std::vector<TraceOp> ops;
    /** Makespan of the traced replay (latest task finish). */
    double makespan = 0.0;

    /**
     * Clear and pre-reserve for a schedule of `opCapacity` ops so the
     * recording path never allocates per op. Called by the traced
     * replays; harnesses reuse one buffer across replays the same way
     * they reuse a ReplayScratch.
     */
    void
    reset(std::size_t opCapacity)
    {
        ops.clear();
        ops.reserve(opCapacity);
        makespan = 0.0;
    }
};

} // namespace ciflow::obs

#endif // CIFLOW_OBS_TRACE_BUFFER_H
