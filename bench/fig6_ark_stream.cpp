/**
 * @file
 * Reproduces paper Figure 6: ARK HKS runtime versus bandwidth with evks
 * streamed versus on-chip, plus the streamed-OC bandwidth matching the
 * baseline (paper: 23.4 GB/s).
 */

#include <cstdio>

#include "bench_util.h"
#include "rpu/experiment.h"

using namespace ciflow;

int
main()
{
    benchutil::header("Figure 6: ARK runtime, evks streamed vs on-chip");

    const HksParams &b = benchmarkByName("ARK");
    MemoryConfig on{32ull << 20, true};
    MemoryConfig off{32ull << 20, false};

    HksExperiment mp_on(b, Dataflow::MP, on), mp_off(b, Dataflow::MP, off);
    HksExperiment dc_on(b, Dataflow::DC, on), dc_off(b, Dataflow::DC, off);
    HksExperiment oc_on(b, Dataflow::OC, on), oc_off(b, Dataflow::OC, off);

    std::printf("bandwidth_gbps,mp_stream_ms,dc_stream_ms,oc_stream_ms,"
                "mp_onchip_ms,dc_onchip_ms,oc_onchip_ms\n");
    for (double bw : paperBandwidthSweepExtended()) {
        std::printf("%g,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", bw,
                    mp_off.simulate(bw).runtimeMs(),
                    dc_off.simulate(bw).runtimeMs(),
                    oc_off.simulate(bw).runtimeMs(),
                    mp_on.simulate(bw).runtimeMs(),
                    dc_on.simulate(bw).runtimeMs(),
                    oc_on.simulate(bw).runtimeMs());
    }

    const double base = baselineRuntime(b);
    double bw_stream = bandwidthToMatch(oc_off, base);
    std::printf("\nOC (streamed) matches the baseline at %.2f GB/s "
                "(paper: 23.4 GB/s; on-chip OCbase is 8 GB/s)\n",
                bw_stream);
    return 0;
}
