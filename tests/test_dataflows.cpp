/**
 * @file
 * Property tests on the MP/DC/OC dataflow generators: dataflow-invariant
 * operation counts, traffic ordering, Table II agreement, and graph
 * structure.
 */

#include <gtest/gtest.h>

#include "hksflow/opmodel.h"
#include "hksflow/traffic.h"

using namespace ciflow;

namespace
{

MemoryConfig
paperMem(bool evk_on_chip = false)
{
    return {32ull << 20, evk_on_chip};
}

} // namespace

class DataflowBench : public ::testing::TestWithParam<std::string>
{
  protected:
    const HksParams &par() const { return benchmarkByName(GetParam()); }
};

TEST_P(DataflowBench, OpCountsAreDataflowInvariant)
{
    // "The number of operations per HKS benchmark is independent of
    // dataflow" (§IV-D) — and equals the closed-form model exactly.
    OpModel om(par());
    const OpCounts expect = om.totalHks();
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par(), d, paperMem());
        EXPECT_EQ(g.totalModOps(), expect.modOps) << dataflowName(d);
        EXPECT_EQ(g.totalShuffleOps(), expect.shuffleOps)
            << dataflowName(d);
    }
}

TEST_P(DataflowBench, PerStageOpsAreDataflowInvariant)
{
    TaskGraph mp = buildHksGraph(par(), Dataflow::MP, paperMem());
    TaskGraph dc = buildHksGraph(par(), Dataflow::DC, paperMem());
    TaskGraph oc = buildHksGraph(par(), Dataflow::OC, paperMem());
    for (StageId s :
         {StageId::ModUpIntt, StageId::ModUpBconv, StageId::ModUpNtt,
          StageId::ModUpKeyMul, StageId::ModUpReduce, StageId::ModDownIntt,
          StageId::ModDownBconv, StageId::ModDownNtt,
          StageId::ModDownFinish}) {
        EXPECT_EQ(mp.stageModOps(s), dc.stageModOps(s)) << stageName(s);
        EXPECT_EQ(mp.stageModOps(s), oc.stageModOps(s)) << stageName(s);
    }
}

TEST_P(DataflowBench, TrafficOrderingOcBest)
{
    auto mp = analyzeTraffic(par(), Dataflow::MP, paperMem());
    auto dc = analyzeTraffic(par(), Dataflow::DC, paperMem());
    auto oc = analyzeTraffic(par(), Dataflow::OC, paperMem());
    EXPECT_LT(oc.trafficBytes, dc.trafficBytes);
    EXPECT_LE(dc.trafficBytes, mp.trafficBytes);
    EXPECT_GT(oc.arithmeticIntensity, mp.arithmeticIntensity);
}

TEST_P(DataflowBench, EvkTrafficExactWhenStreamed)
{
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par(), d, paperMem(false));
        EXPECT_EQ(g.evkBytes(), par().evkBytes()) << dataflowName(d);
    }
}

TEST_P(DataflowBench, NoEvkTrafficWhenOnChip)
{
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par(), d, paperMem(true));
        EXPECT_EQ(g.evkBytes(), 0u) << dataflowName(d);
    }
}

TEST_P(DataflowBench, TrafficAtLeastCompulsory)
{
    // Any schedule must at least read the input and write the output.
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par(), d, paperMem(true));
        EXPECT_GE(g.loadBytes(), par().inputBytes());
        EXPECT_GE(g.storeBytes(), par().outputBytes());
    }
}

TEST_P(DataflowBench, UnlimitedMemoryHasNoSpills)
{
    // With enough on-chip memory, traffic collapses to compulsory
    // input + output (+ streamed evk) for every dataflow (§IV: "Assuming
    // unlimited on-chip memory, the performance gap ... would decrease
    // significantly").
    MemoryConfig big{4ull << 30, false};
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par(), d, big);
        EXPECT_EQ(g.loadBytes(),
                  par().inputBytes() + par().evkBytes())
            << dataflowName(d);
        EXPECT_EQ(g.storeBytes(), par().outputBytes())
            << dataflowName(d);
    }
}

TEST_P(DataflowBench, GraphsValidate)
{
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par(), d, paperMem());
        g.validate();
        EXPECT_GT(g.size(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperBenchmarks, DataflowBench,
                         ::testing::Values("BTS1", "BTS2", "BTS3", "ARK",
                                           "DPRIVE"));

TEST(DataflowTable2, WithinToleranceOfPaper)
{
    // Paper Table II reference (MB moved incl. evk, 32 MiB on-chip).
    struct Row
    {
        const char *name;
        double mb[3]; // MP, DC, OC
    };
    const Row rows[] = {
        {"BTS1", {600, 600, 420}},   {"BTS2", {1352, 1278, 716}},
        {"BTS3", {1850, 1766, 1119}}, {"ARK", {432, 356, 180}},
        {"DPRIVE", {365, 336, 170}},
    };
    for (const Row &r : rows) {
        int di = 0;
        for (Dataflow d : allDataflows()) {
            auto s = analyzeTraffic(benchmarkByName(r.name), d,
                                    paperMem());
            // Shape-level agreement. Our MP is strictly stage-sequential
            // and materializes every digit product, so it spills a bit
            // more than the paper's on the small benchmarks; DC/OC track
            // the paper more closely (see EXPERIMENTS.md).
            double tol = d == Dataflow::MP ? 0.45 : 0.35;
            EXPECT_NEAR(s.trafficMb() / r.mb[di], 1.0, tol)
                << r.name << " " << dataflowName(d);
            ++di;
        }
    }
}

TEST(DataflowTable2, AiImprovementMatchesPaperRange)
{
    // Paper: OC gives 1.43x–2.4x more AI than MP. Allow a wider band to
    // absorb residency-policy differences, but demand a real gap.
    for (const auto &b : paperBenchmarks()) {
        auto mp = analyzeTraffic(b, Dataflow::MP, paperMem());
        auto oc = analyzeTraffic(b, Dataflow::OC, paperMem());
        double gain = oc.arithmeticIntensity / mp.arithmeticIntensity;
        EXPECT_GE(gain, 1.3) << b.name;
        EXPECT_LE(gain, 4.0) << b.name;
    }
}

TEST(DataflowMinCapacity, BelowMinimumIsFatal)
{
    const HksParams &b = benchmarkByName("BTS3");
    MemoryConfig tiny{1ull << 20, false};
    EXPECT_DEATH(buildHksGraph(b, Dataflow::OC, tiny), "");
}

TEST(DataflowMinCapacity, AtMinimumSucceeds)
{
    for (const auto &b : paperBenchmarks()) {
        for (Dataflow d : allDataflows()) {
            MemoryConfig mem{minDataCapacity(b, d), false};
            TaskGraph g = buildHksGraph(b, d, mem);
            g.validate();
        }
    }
}

TEST(DataflowCapacitySweep, TrafficMonotoneInCapacity)
{
    // More on-chip memory never increases traffic (within each
    // dataflow's own policy family) — checked on a coarse grid.
    const HksParams &b = benchmarkByName("ARK");
    for (Dataflow d : allDataflows()) {
        std::uint64_t prev = ~0ull;
        for (double mib : {8.0, 16.0, 32.0, 64.0, 128.0, 512.0}) {
            MemoryConfig mem{static_cast<std::uint64_t>(mib * 1024 *
                                                        1024),
                             false};
            if (mem.dataCapacityBytes < minDataCapacity(b, d))
                continue;
            TaskGraph g = buildHksGraph(b, d, mem);
            EXPECT_LE(g.trafficBytes(), prev)
                << dataflowName(d) << " at " << mib << " MiB";
            prev = g.trafficBytes();
        }
    }
}

TEST(DataflowCompression, HalvesEvkTraffic)
{
    // §IV-D: seeded key compression halves streamed key movement.
    for (const auto &b : paperBenchmarks()) {
        MemoryConfig plain{32ull << 20, false, false};
        MemoryConfig comp{32ull << 20, false, true};
        for (Dataflow d : allDataflows()) {
            TaskGraph g0 = buildHksGraph(b, d, plain);
            TaskGraph g1 = buildHksGraph(b, d, comp);
            EXPECT_EQ(g1.evkBytes(), g0.evkBytes() / 2)
                << b.name << " " << dataflowName(d);
            // Non-key traffic is unchanged.
            EXPECT_EQ(g1.trafficBytes() - g1.evkBytes(),
                      g0.trafficBytes() - g0.evkBytes())
                << b.name << " " << dataflowName(d);
        }
    }
}

TEST(DataflowCompression, BoostsOcArithmeticIntensity)
{
    // The paper projects OC+compression AI of 3.82 (for its best case).
    MemoryConfig comp{32ull << 20, false, true};
    double best = 0;
    for (const auto &b : paperBenchmarks()) {
        auto s = analyzeTraffic(b, Dataflow::OC, comp);
        best = std::max(best, s.arithmeticIntensity);
    }
    EXPECT_GE(best, 3.0);
    EXPECT_LE(best, 5.0);
}
