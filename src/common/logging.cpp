#include "common/logging.h"

#include <iostream>

namespace ciflow
{

void
inform(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace ciflow
