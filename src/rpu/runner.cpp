#include "rpu/runner.h"

#include <algorithm>

#include "common/logging.h"

namespace ciflow
{

namespace
{

/** The runner whose pool the current thread belongs to, if any. */
thread_local const ExperimentRunner *tls_pool_owner = nullptr;

} // namespace

ExperimentKey
ExperimentKey::of(const HksParams &par, Dataflow d,
                  const MemoryConfig &mem)
{
    return {par.name,
            par.logN,
            par.kl,
            par.kp,
            par.dnum,
            par.alpha,
            d,
            mem.dataCapacityBytes,
            mem.evkOnChip,
            mem.evkCompressed};
}

std::size_t
ExperimentKeyHash::operator()(const ExperimentKey &k) const
{
    // splitmix64-style mixing of each field into a running seed.
    auto mix = [](std::size_t seed, std::uint64_t v) {
        v += 0x9e3779b97f4a7c15ull + seed;
        v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
        v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(v ^ (v >> 31));
    };
    std::size_t h = std::hash<std::string>{}(k.name);
    h = mix(h, k.logN);
    h = mix(h, k.kl);
    h = mix(h, k.kp);
    h = mix(h, k.dnum);
    h = mix(h, k.alpha);
    h = mix(h, static_cast<std::uint64_t>(k.dataflow));
    h = mix(h, k.dataCapacityBytes);
    h = mix(h, (k.evkOnChip ? 2u : 0u) | (k.evkCompressed ? 1u : 0u));
    return h;
}

ExperimentRunner::ExperimentRunner(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner()
{
    {
        std::lock_guard<std::mutex> lk(pool_mu);
        stopping = true;
    }
    pool_cv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ExperimentRunner::workerLoop()
{
    tls_pool_owner = this;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(pool_mu);
            pool_cv.wait(lk,
                         [this] { return stopping || !pending.empty(); });
            if (pending.empty())
                return; // stopping and drained
            job = std::move(pending.front());
            pending.pop_front();
        }
        job();
    }
}

std::shared_ptr<const HksExperiment>
ExperimentRunner::experiment(const HksParams &par, Dataflow d,
                             const MemoryConfig &mem)
{
    const ExperimentKey key = ExperimentKey::of(par, d, mem);
    {
        std::lock_guard<std::mutex> lk(cache_mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            ++hits;
            return it->second;
        }
        ++misses;
    }
    // Build outside the lock: graph construction is the slow part and
    // independent builds may proceed concurrently. A racing builder of
    // the same key loses gracefully below.
    auto built = std::make_shared<const HksExperiment>(par, d, mem);
    std::lock_guard<std::mutex> lk(cache_mu);
    auto [it, inserted] = cache.emplace(key, std::move(built));
    (void)inserted;
    return it->second;
}

std::size_t
ExperimentRunner::cachedExperiments() const
{
    std::lock_guard<std::mutex> lk(cache_mu);
    return cache.size();
}

std::size_t
ExperimentRunner::cacheHits() const
{
    std::lock_guard<std::mutex> lk(cache_mu);
    return hits;
}

std::size_t
ExperimentRunner::cacheMisses() const
{
    std::lock_guard<std::mutex> lk(cache_mu);
    return misses;
}

void
ExperimentRunner::exportMetrics(obs::MetricsRegistry &m,
                                const std::string &prefix) const
{
    m.count(prefix + "cache_hits", cacheHits());
    m.count(prefix + "cache_misses", cacheMisses());
    m.count(prefix + "cached_experiments", cachedExperiments());
    m.count(prefix + "threads", threadCount());
}

void
ExperimentRunner::runAll(const std::vector<std::function<void()>> &jobs)
{
    if (jobs.empty())
        return;
    // Completion latch shared with the wrappers so no job ever touches
    // this frame's stack after the final decrement releases the waiter.
    struct Latch
    {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t remaining;
    };
    auto latch = std::make_shared<Latch>();
    latch->remaining = jobs.size();
    {
        std::lock_guard<std::mutex> lk(pool_mu);
        panicIf(stopping, "runner already shut down");
        for (const auto &job : jobs) {
            pending.push_back([latch, job] {
                job();
                std::lock_guard<std::mutex> dlk(latch->mu);
                if (--latch->remaining == 0)
                    latch->cv.notify_all();
            });
        }
    }
    pool_cv.notify_all();
    if (tls_pool_owner == this) {
        // Called from one of this runner's own workers (a job that
        // itself fans out, e.g. a parallel helper inside a batched
        // harness). Blocking here would strand a worker slot — and
        // deadlock once every worker waits the same way — so this
        // thread helps drain the queue until its own batch completes.
        // Progress is guaranteed: a helper only sleeps when the queue
        // is empty, which means every outstanding job of its batch is
        // running on some other thread.
        for (;;) {
            {
                std::lock_guard<std::mutex> lk(latch->mu);
                if (latch->remaining == 0)
                    return;
            }
            std::function<void()> job;
            {
                std::lock_guard<std::mutex> lk(pool_mu);
                if (!pending.empty()) {
                    job = std::move(pending.front());
                    pending.pop_front();
                }
            }
            if (job) {
                job();
                continue;
            }
            std::unique_lock<std::mutex> lk(latch->mu);
            latch->cv.wait(lk, [&] { return latch->remaining == 0; });
            return;
        }
    }
    std::unique_lock<std::mutex> lk(latch->mu);
    latch->cv.wait(lk, [&] { return latch->remaining == 0; });
}

std::vector<SimStats>
ExperimentRunner::sweep(const HksExperiment &exp,
                        const std::vector<SweepPoint> &points)
{
    std::vector<SimStats> out(points.size());
    // One job per point: the SimStats path replays scalar either way,
    // so batching here would only trade pool parallelism for saved
    // queue ops. The batched fast path is sweepRuntimes().
    std::vector<std::function<void()>> jobs;
    jobs.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        jobs.push_back([&, i] {
            out[i] = exp.simulate(points[i].bandwidthGBps,
                                  points[i].modopsMult);
        });
    }
    runAll(jobs);
    return out;
}

std::vector<double>
ExperimentRunner::sweepRuntimes(const HksExperiment &exp,
                                const std::vector<SweepPoint> &points)
{
    std::vector<double> out(points.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve((points.size() + sim::kBatchLanes - 1) /
                 sim::kBatchLanes);
    for (std::size_t base = 0; base < points.size();
         base += sim::kBatchLanes) {
        const std::size_t n =
            std::min(sim::kBatchLanes, points.size() - base);
        jobs.push_back([&, base, n] {
            double bws[sim::kBatchLanes];
            double mults[sim::kBatchLanes];
            for (std::size_t i = 0; i < n; ++i) {
                bws[i] = points[base + i].bandwidthGBps;
                mults[i] = points[base + i].modopsMult;
            }
            exp.simulateRuntimeMany(bws, mults, n, out.data() + base);
        });
    }
    runAll(jobs);
    return out;
}

std::vector<double>
ExperimentRunner::sweepRuntimes(const HksExperiment &exp,
                                const std::vector<double> &bandwidths,
                                double modops_mult)
{
    std::vector<SweepPoint> points;
    points.reserve(bandwidths.size());
    for (double bw : bandwidths)
        points.push_back({bw, modops_mult});
    return sweepRuntimes(exp, points);
}

std::vector<SimStats>
ExperimentRunner::sweep(const HksExperiment &exp,
                        const std::vector<double> &bandwidths,
                        double modops_mult)
{
    std::vector<SweepPoint> points;
    points.reserve(bandwidths.size());
    for (double bw : bandwidths)
        points.push_back({bw, modops_mult});
    return sweep(exp, points);
}

double
baselineRuntime(ExperimentRunner &runner, const HksParams &par)
{
    MemoryConfig mem;
    mem.dataCapacityBytes = 32ull << 20;
    mem.evkOnChip = true;
    return runner.experiment(par, Dataflow::MP, mem)
        ->simulateRuntime(64.0);
}

double
ocBaseBandwidth(ExperimentRunner &runner, const HksParams &par)
{
    const double target = baselineRuntime(runner, par);
    MemoryConfig mem;
    mem.dataCapacityBytes = 32ull << 20;
    mem.evkOnChip = true;
    auto oc = runner.experiment(par, Dataflow::OC, mem);
    // Evaluate the whole paper grid with one parallel batched sweep,
    // then apply the shared grid rule. Bit-identical to the SimStats
    // sweep this replaced: every lane replays the same schedule at the
    // same rates.
    const std::vector<double> &grid = paperBandwidthSweep();
    return ocBaseFromGrid(grid, runner.sweepRuntimes(*oc, grid),
                          target);
}

std::vector<SimStats>
ExperimentRunner::sweepConfigs(const HksExperiment &exp,
                               const std::vector<RpuConfig> &configs)
{
    std::vector<SimStats> out(configs.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        jobs.push_back([&, i] { out[i] = exp.simulate(configs[i]); });
    runAll(jobs);
    return out;
}

} // namespace ciflow
