#include "fault/failover.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/units.h"

namespace ciflow::fault
{

using shard::Partition;
using shard::ShardSpec;

sim::Error
planFailover(const TaskGraph &g, const ShardSpec &spec,
             const Partition &cur, std::uint32_t deadShard,
             const std::vector<char> &alive,
             const std::uint8_t *doneGraph,
             const std::vector<double> &weights, FailoverPlan &out)
{
    panicIf(cur.shardOf.size() != g.size(),
            "partition does not cover the graph");
    panicIf(weights.size() != g.size(),
            "weights do not cover the graph");
    panicIf(alive.size() != cur.shards, "alive mask has wrong size");
    panicIf(deadShard >= cur.shards || alive[deadShard],
            "failover target shard is not dead");

    std::size_t survivors = 0;
    for (char a : alive)
        survivors += a != 0;
    if (survivors == 0)
        return {sim::ErrorCode::NoSurvivors,
                "chip " + std::to_string(deadShard) +
                    " failed with no surviving shard to take its tasks"};

    const auto isDone = [&](std::uint32_t t) {
        return doneGraph != nullptr && doneGraph[t] != 0;
    };

    // Recovery policy: the dead shard's tasks are adopted wholesale
    // by the least-loaded survivor (load = estimated seconds of
    // *remaining* work, ties to the lowest shard id so the plan is
    // deterministic). Concentrating the move is deliberate: it keeps
    // the recompilePartition patch footprint at two dirty shards and
    // aims the migration traffic at one chip, so failover optimizes
    // time-to-resume. Steady-state balance is a later, off-critical-
    // path re-partition's job, not the failover's.
    std::vector<double> load(cur.shards, 0.0);
    for (std::uint32_t t = 0; t < g.size(); ++t)
        if (cur.shardOf[t] != deadShard && !isDone(t))
            load[cur.shardOf[t]] += weights[t];
    std::uint32_t dest = static_cast<std::uint32_t>(cur.shards);
    for (std::uint32_t s = 0; s < cur.shards; ++s)
        if (alive[s] &&
            (dest == cur.shards || load[s] < load[dest]))
            dest = s;

    std::vector<std::uint32_t> assign = cur.shardOf;
    std::size_t moved = 0;
    for (std::uint32_t t = 0; t < g.size(); ++t) {
        if (cur.shardOf[t] != deadShard)
            continue;
        assign[t] = dest;
        ++moved;
    }

    // Migration bytes: per moved unfinished task, its DRAM payload
    // (memory tasks re-stage their operand/evk stream) plus one
    // re-replication of each already-completed input, deduplicated per
    // (producer, destination) and free when the producer's (possibly
    // also re-placed) home is the destination itself.
    std::uint64_t bytes = 0;
    std::unordered_set<std::uint64_t> shipped;
    for (std::uint32_t t = 0; t < g.size(); ++t) {
        if (cur.shardOf[t] != deadShard || isDone(t))
            continue;
        const Task &task = g[t];
        if (task.kind != TaskKind::Compute)
            bytes += task.bytes;
        for (std::uint32_t d : task.deps) {
            if (!isDone(d) || assign[d] == assign[t])
                continue;
            const std::uint64_t key =
                std::uint64_t{d} * cur.shards + assign[t];
            if (shipped.insert(key).second)
                bytes += shard::edgePayloadBytes(g[d], spec);
        }
    }

    out.part = shard::assignmentPartition(g, spec, std::move(assign),
                                          weights);
    out.movedTasks = moved;
    out.migrationBytes = bytes;
    return {};
}

double
migrationSeconds(std::uint64_t bytes,
                 const shard::InterconnectConfig &net,
                 std::size_t survivors)
{
    if (bytes == 0)
        return 0.0;
    panicIf(survivors == 0, "migration with no survivors");
    const double fanout =
        net.topology == shard::Topology::SharedBus
            ? 1.0
            : static_cast<double>(survivors);
    return static_cast<double>(bytes) /
               (gbps(net.linkGBps) * fanout) +
           net.latencySec;
}

} // namespace ciflow::fault
