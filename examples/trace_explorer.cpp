/**
 * @file
 * Trace explorer: replay a workload with the observer attached and
 * write a Chrome trace-event file openable in Perfetto or
 * chrome://tracing.
 *
 * Usage:
 *   trace_explorer [benchmark] [dataflow] [shards] [chip_gbps] [out]
 *                  [fault ...]
 *
 * Defaults: ARK OC 1 64 replay.trace.json. With shards == 1 the
 * single-RPU compiled schedule replays through obs::replayTraced;
 * with shards > 1 the workload is partitioned and replayed through
 * fault::FaultSim with the scenario observer, so fault args can
 * script a degraded run:
 *
 *   fail <shard> <at_ms>
 *   degrade <shard> <channel> <factor> <at_ms>
 *   stall <shard> <factor> <at_ms> <dur_ms>
 *
 * e.g.  trace_explorer BTS3 OC 4 16 bts3.trace.json fail 1 2.0
 *
 * Besides the trace file, prints the derived analyses: per-resource
 * utilization and queue wait, the top bottleneck tasks, and the
 * critical path (whose length equals the makespan exactly).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault_replay.h"
#include "obs/analysis.h"
#include "obs/chrome_trace.h"
#include "obs/traced_replay.h"
#include "rpu/experiment.h"
#include "shard/placement_search.h"

using namespace ciflow;

namespace
{

/** Parse the trailing fault-event specs into a normalized trace. */
fault::FaultTrace
parseFaults(int argc, char **argv, int i)
{
    fault::FaultTrace trace;
    const auto need = [&](int n) {
        if (i + n > argc) {
            std::fprintf(stderr, "missing fault arguments\n");
            std::exit(2);
        }
    };
    while (i < argc) {
        const std::string kind = argv[i++];
        fault::FaultEvent e;
        if (kind == "fail") {
            need(2);
            e.kind = fault::FaultKind::ChipFail;
            e.shard = static_cast<std::uint32_t>(std::atoi(argv[i]));
            e.atSec = std::atof(argv[i + 1]) * 1e-3;
            i += 2;
        } else if (kind == "degrade") {
            need(4);
            e.kind = fault::FaultKind::ChannelDegrade;
            e.shard = static_cast<std::uint32_t>(std::atoi(argv[i]));
            e.channel =
                static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
            e.factor = std::atof(argv[i + 2]);
            e.atSec = std::atof(argv[i + 3]) * 1e-3;
            i += 4;
        } else if (kind == "stall") {
            need(4);
            e.kind = fault::FaultKind::TransientStall;
            e.shard = static_cast<std::uint32_t>(std::atoi(argv[i]));
            e.factor = std::atof(argv[i + 1]);
            e.atSec = std::atof(argv[i + 2]) * 1e-3;
            e.durSec = std::atof(argv[i + 3]) * 1e-3;
            i += 4;
        } else {
            std::fprintf(stderr, "unknown fault kind '%s'\n",
                         kind.c_str());
            std::exit(2);
        }
        trace.events.push_back(e);
    }
    trace.normalize();
    return trace;
}

/** Print the derived analyses of one traced replay. */
void
printAnalyses(const sim::CompiledSchedule &cs,
              const obs::TraceBuffer &buf)
{
    std::printf("\nResource utilization (makespan %.3f ms):\n",
                buf.makespan * 1e3);
    const auto util =
        obs::resourceUtilization(buf, cs.resourceCount());
    for (const obs::ResourceUtilization &u : util)
        if (u.jobs > 0)
            std::printf("  %-14s busy %8.3f ms (%5.1f%%)  queue wait "
                        "%8.3f ms  (%6zu ops)\n",
                        cs.resourceName(u.resource).c_str(),
                        u.busySeconds * 1e3, u.busyFraction * 100.0,
                        u.queueWaitSeconds * 1e3, u.jobs);

    std::printf("\nTop bottleneck tasks (by service time):\n");
    for (const obs::TaskCost &c : obs::topBottlenecks(buf, 5))
        std::printf("  task %-7u service %8.3f ms  queue wait %8.3f "
                    "ms  finish %8.3f ms\n",
                    c.task, c.serviceSeconds * 1e3,
                    c.queueWaitSeconds * 1e3, c.finish * 1e3);

    const obs::CriticalPath cp = obs::criticalPath(cs, buf);
    std::printf("\nCritical path: %zu hops, length %.6f ms "
                "(== makespan exactly)\n",
                cp.steps.size(), cp.length * 1e3);
    // Attribute the hops: which resources the tight chain runs over.
    std::vector<std::size_t> hops(cs.resourceCount(), 0);
    std::size_t queueEdges = 0;
    for (const obs::CriticalStep &s : cp.steps) {
        ++hops[s.resource];
        queueEdges += s.tightViaResource ? 1 : 0;
    }
    for (std::size_t r = 0; r < hops.size(); ++r)
        if (hops[r] > 0)
            std::printf("  %-14s %6zu hops  (dependency slack min "
                        "%.3g ms)\n",
                        cs.resourceName(static_cast<sim::ResourceId>(r))
                            .c_str(),
                        hops[r], cp.resourceSlack[r] * 1e3);
    std::printf("  %zu of %zu edges tight via resource queueing, the "
                "rest via dependencies\n",
                queueEdges, cp.steps.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "ARK";
    const std::string flow = argc > 2 ? argv[2] : "OC";
    const std::size_t shards =
        argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 1;
    const double chip_gbps = argc > 4 ? std::atof(argv[4]) : 64.0;
    const std::string out =
        argc > 5 ? argv[5] : "replay.trace.json";
    const fault::FaultTrace trace = parseFaults(argc, argv, 6);

    const HksParams &par = benchmarkByName(bench);
    Dataflow d = Dataflow::OC;
    for (Dataflow cand : allDataflows())
        if (flow == dataflowName(cand))
            d = cand;
    const MemoryConfig mem{32ull << 20, false};

    RpuConfig chip;
    chip.bandwidthGBps = chip_gbps;
    chip.dataMemBytes = mem.dataCapacityBytes;
    chip.evkOnChip = mem.evkOnChip;

    std::printf("%s\n", par.describe().c_str());
    std::printf("dataflow=%s shards=%zu chip=%.0f GB/s (evk "
                "streamed)\n",
                dataflowName(d), shards, chip_gbps);

    HksExperiment exp(par, d, mem);

    if (shards <= 1) {
        if (!trace.empty()) {
            std::fprintf(stderr, "fault events need shards > 1\n");
            return 2;
        }
        const RpuEngine eng(chip);
        const sim::CompiledSchedule cs = eng.compile(exp.graph());
        sim::ReplayRates rates;
        eng.rates(cs, rates);
        sim::ReplayScratch scratch;
        obs::TraceBuffer buf;
        const double mk = obs::replayTraced(cs, rates, scratch, buf);
        std::printf("traced replay: %zu tasks, %zu ops, makespan "
                    "%.3f ms\n",
                    cs.taskCount(), buf.ops.size(), mk * 1e3);
        printAnalyses(cs, buf);

        const obs::ScenarioTrace t =
            obs::singleReplayTrace(cs, std::move(buf));
        std::ofstream os(out);
        obs::writeChromeTrace(os, t);
    } else {
        const TaskGraph &g = exp.graph();
        const shard::ShardSpec spec = shard::placementShardSpec(
            par, shards, shard::PartitionStrategy::MinCutGreedy, 0.10);
        const std::vector<double> w = shard::taskWeights(g, chip);
        const shard::Partition part = shard::partitionGraph(g, spec, w);
        shard::InterconnectConfig net;
        net.linkGBps = 256.0;
        net.latencySec = 2e-6;

        fault::FaultSim fs(g, spec, w, part, chip, net);
        if (sim::Error e = fault::checkTrace(trace, fs.shape()))
            fatal(e.message());

        // Before run(): healthyMakespan() rebinds to the base
        // partition, which would invalidate the final segment's
        // binding (and the analyses below) after a failover.
        const double healthy = fs.healthyMakespan();
        obs::ScenarioTrace viz;
        const fault::DegradedOutcome o = fs.run(trace, &viz);
        std::printf("scenario: %zu fault events, %zu replay "
                    "segments\n",
                    trace.events.size(), viz.segments.size());
        if (!o.completed) {
            std::printf("scenario killed every chip before "
                        "completion\n");
        } else {
            std::printf("makespan %.3f ms (healthy %.3f ms), %zu "
                        "failovers, %llu bytes migrated (%.3f ms "
                        "pause)\n",
                        o.makespan * 1e3, healthy * 1e3, o.failovers,
                        static_cast<unsigned long long>(
                            o.migratedBytes),
                        o.migrationSec * 1e3);
            // The final segment ran on the current binding, so the
            // derived analyses line up with fs.compiled() (earlier
            // segments' bindings were patched away by failovers).
            if (!viz.segments.empty())
                printAnalyses(fs.compiled().schedule,
                              viz.segments.back().buf);
        }
        std::ofstream os(out);
        obs::writeChromeTrace(os, viz);
    }
    std::printf("\nwrote %s (open in https://ui.perfetto.dev or "
                "chrome://tracing)\n",
                out.c_str());
    return 0;
}
