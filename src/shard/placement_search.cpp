#include "shard/placement_search.h"

#include <algorithm>

namespace ciflow::shard
{

ShardSpec
placementShardSpec(const HksParams &par, std::size_t shards,
                   PartitionStrategy strategy, double imbalance_tol)
{
    ShardSpec ss;
    ss.shards = shards;
    ss.strategy = strategy;
    ss.imbalanceTol = imbalance_tol;
    ss.computeOutputBytes = par.towerBytes();
    return ss;
}

PlacementEval
evaluatePlacement(const TaskGraph &g, const Partition &p,
                  const RpuConfig &chip, const InterconnectConfig &net)
{
    const ShardedEngine eng(chip, net);
    const ShardedCompiled sc = eng.compile(g, p);
    PlacementEval e;
    e.runtime = eng.replayRuntime(sc);
    e.cutBytes = p.cutBytes;
    e.transferTasks = sc.transferTasks;
    e.imbalance = p.imbalance();
    return e;
}

std::vector<PlacementResult>
searchPlacements(ExperimentRunner &runner, const HksParams &par,
                 const MemoryConfig &mem, const PlacementSpec &spec)
{
    // The chips simulate the graph the experiment was built against,
    // so their memory-system fields must match it.
    RpuConfig chip = spec.chip;
    chip.dataMemBytes = mem.dataCapacityBytes;
    chip.evkOnChip = mem.evkOnChip;

    // Phase 1: one partition per (dataflow, shard count, strategy) —
    // the cut does not depend on the topology, so it is computed once
    // and shared across the topology grid points.
    struct Cut
    {
        std::shared_ptr<const HksExperiment> exp;
        std::shared_ptr<const std::vector<double>> weights;
        Dataflow dataflow = Dataflow::OC;
        std::size_t shards = 1;
        PartitionStrategy strategy =
            PartitionStrategy::ContiguousByLevel;
        double baseline = 0.0;
        Partition partition;
    };
    std::vector<Cut> cuts;
    for (Dataflow d : spec.dataflows) {
        auto exp = runner.experiment(par, d, mem);
        auto weights = std::make_shared<const std::vector<double>>(
            taskWeights(exp->graph(), chip));
        const double baseline = exp->simulate(chip).runtime;
        bool k1_done = false;
        for (std::size_t k : spec.shardCounts) {
            for (PartitionStrategy strat : spec.strategies) {
                if (k == 1) {
                    // Strategy is vacuous with no cut; keep a single
                    // K=1 partition per dataflow.
                    if (k1_done)
                        continue;
                    k1_done = true;
                }
                Cut c;
                c.exp = exp;
                c.weights = weights;
                c.dataflow = d;
                c.shards = k;
                c.strategy = strat;
                c.baseline = baseline;
                cuts.push_back(std::move(c));
            }
        }
    }
    std::vector<std::function<void()>> jobs;
    jobs.reserve(cuts.size());
    for (Cut &c : cuts) {
        jobs.push_back([&c, &spec, &par] {
            c.partition = partitionGraph(
                c.exp->graph(),
                placementShardSpec(par, c.shards, c.strategy,
                                   spec.imbalanceTol),
                *c.weights);
        });
    }
    runner.runAll(jobs);

    // Phase 2: compile + replay each (cut, topology) grid point. K=1
    // needs no topology sweep either — there are no links.
    struct Job
    {
        const Cut *cut = nullptr;
        PlacementResult r;
    };
    std::vector<Job> grid;
    for (const Cut &c : cuts) {
        for (Topology topo : spec.topologies) {
            Job j;
            j.cut = &c;
            j.r.dataflow = c.dataflow;
            j.r.shards = c.shards;
            j.r.topology = topo;
            j.r.strategy = c.strategy;
            j.r.baseline = c.baseline;
            grid.push_back(std::move(j));
            if (c.shards == 1)
                break;
        }
    }
    jobs.clear();
    jobs.reserve(grid.size());
    for (Job &j : grid) {
        jobs.push_back([&j, &chip, &spec] {
            InterconnectConfig net = spec.interconnect;
            net.topology = j.r.topology;
            const PlacementEval e = evaluatePlacement(
                j.cut->exp->graph(), j.cut->partition, chip, net);
            j.r.runtime = e.runtime;
            j.r.cutBytes = e.cutBytes;
            j.r.transferTasks = e.transferTasks;
            j.r.imbalance = e.imbalance;
        });
    }
    runner.runAll(jobs);

    std::vector<PlacementResult> out;
    out.reserve(grid.size());
    for (const Job &j : grid)
        out.push_back(j.r);
    std::stable_sort(out.begin(), out.end(),
                     [](const PlacementResult &a,
                        const PlacementResult &b) {
                         return a.runtime < b.runtime;
                     });
    return out;
}

} // namespace ciflow::shard
