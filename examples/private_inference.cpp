/**
 * @file
 * Private-inference workload: an encrypted fully-connected layer.
 *
 * The paper motivates HKS with private neural inference — a single HE
 * ResNet-20 inference performs 3,306 rotations, and key switching is
 * ~70% of its runtime. This example evaluates one FC layer
 * (y = ReLU~(W x + b), with a degree-2 polynomial activation) entirely
 * under CKKS using the rotate-and-accumulate ("diagonal") method, then
 * uses the RPU model to estimate how the layer's key-switching time
 * scales across the three dataflows.
 */

#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "rpu/runner.h"

using namespace ciflow;

namespace
{

constexpr std::size_t kDim = 16; // FC layer: 16 -> 16

/** Plain reference: y = act(W x + b), act(t) = 0.5 t + 0.25 t^2. */
std::vector<double>
reference(const std::vector<std::vector<double>> &w,
          const std::vector<double> &b, const std::vector<double> &x)
{
    std::vector<double> y(kDim, 0);
    for (std::size_t i = 0; i < kDim; ++i) {
        double acc = b[i];
        for (std::size_t j = 0; j < kDim; ++j)
            acc += w[i][j] * x[j];
        y[i] = 0.5 * acc + 0.25 * acc * acc;
    }
    return y;
}

} // namespace

int
main()
{
    CkksParams params;
    params.logN = 12;
    params.maxLevel = 5;
    params.dnum = 3;
    CkksContext ctx(params);

    KeyGenerator keygen(ctx, 2024);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    EvalKey rlk = keygen.relinKey(sk);

    // The diagonal method needs rotations 1..kDim-1.
    std::vector<long> rots;
    for (std::size_t r = 1; r < kDim; ++r)
        rots.push_back(static_cast<long>(r));
    GaloisKeys gk = keygen.galoisKeys(sk, rots);

    Encoder enc(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    // Random layer and input.
    std::mt19937_64 gen(7);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    std::vector<std::vector<double>> w(kDim, std::vector<double>(kDim));
    std::vector<double> bias(kDim), x(kDim);
    for (auto &row : w)
        for (auto &v : row)
            v = dist(gen) / kDim;
    for (auto &v : bias)
        v = dist(gen);
    for (auto &v : x)
        v = dist(gen);

    // Pack x into the first kDim slots, replicated so rotations wrap
    // within the window.
    std::vector<double> packed(ctx.slots(), 0.0);
    for (std::size_t i = 0; i < ctx.slots(); ++i)
        packed[i] = x[i % kDim];
    Ciphertext cx =
        encryptor.encrypt(enc.encode(packed, ctx.maxLevel()),
                          ctx.scale());

    // y = sum_d diag_d(W) * rotate(x, d): kDim-1 rotations, each one a
    // full hybrid key switch.
    std::size_t key_switches = 0;
    Ciphertext acc = eval.mulPlain(
        cx,
        enc.encode(
            [&] {
                std::vector<double> diag(ctx.slots());
                for (std::size_t i = 0; i < ctx.slots(); ++i)
                    diag[i] = w[i % kDim][i % kDim];
                return diag;
            }(),
            ctx.maxLevel()),
        ctx.scale());
    for (std::size_t d = 1; d < kDim; ++d) {
        Ciphertext rot = eval.rotate(cx, static_cast<long>(d), gk);
        ++key_switches;
        std::vector<double> diag(ctx.slots());
        for (std::size_t i = 0; i < ctx.slots(); ++i)
            diag[i] = w[i % kDim][(i + d) % kDim];
        Ciphertext term = eval.mulPlain(
            rot, enc.encode(diag, ctx.maxLevel()), ctx.scale());
        acc = eval.add(acc, term);
    }
    acc = eval.rescale(acc);

    // + bias, then act(t) = 0.5 t + 0.25 t^2 (one more key switch).
    std::vector<double> bias_packed(ctx.slots());
    for (std::size_t i = 0; i < ctx.slots(); ++i)
        bias_packed[i] = bias[i % kDim];
    acc = eval.addPlain(
        acc, enc.encode(bias_packed, acc.level, acc.scale));

    Ciphertext sq = eval.rescale(eval.multiply(acc, acc, rlk));
    ++key_switches;
    std::vector<double> half(ctx.slots(), 0.5);
    Ciphertext lin = eval.rescale(eval.mulPlain(
        acc, enc.encode(half, acc.level), ctx.scale()));
    std::vector<double> quarter(ctx.slots(), 0.25);
    Ciphertext quad = eval.rescale(eval.mulPlain(
        sq, enc.encode(quarter, sq.level), ctx.scale()));
    // Align levels: lin is one level above quad; bring it down.
    Ciphertext lin_aligned = eval.rescale(eval.mulPlain(
        lin, enc.encode(std::vector<double>(ctx.slots(), 1.0),
                        lin.level),
        ctx.scale()));
    Ciphertext out = eval.add(lin_aligned, quad);

    // Verify against the plaintext layer.
    auto result = enc.decode(decryptor.decrypt(out), out.scale);
    auto expect = reference(w, bias, x);
    double max_err = 0;
    for (std::size_t i = 0; i < kDim; ++i)
        max_err = std::max(max_err,
                           std::abs(result[i].real() - expect[i]));
    std::printf("Encrypted FC layer (%zux%zu, degree-2 activation): "
                "max error %.3e over %zu outputs\n",
                kDim, kDim, max_err, kDim);
    std::printf("Hybrid key switches executed: %zu rotations + 1 "
                "relinearization\n",
                key_switches - 1);

    // RPU-model projection: what this layer's key-switching costs on
    // the accelerator at production parameters (ARK) per dataflow.
    std::printf("\nProjected accelerator time for %zu key switches "
                "(ARK parameters, 32 GB/s, evk streamed):\n",
                key_switches);
    ExperimentRunner runner;
    for (Dataflow d : allDataflows()) {
        auto exp = runner.experiment(benchmarkByName("ARK"), d,
                                     MemoryConfig{32ull << 20, false});
        double per_ks = exp->simulate(32.0).runtime;
        std::printf("  %s: %.2f ms/key-switch -> %.1f ms for the "
                    "layer\n",
                    dataflowName(d), per_ks * 1e3,
                    per_ks * 1e3 * static_cast<double>(key_switches));
    }
    std::printf("\nAt ResNet-20 scale (3,306 rotations, §I), the "
                "MP->OC saving compounds to seconds per inference.\n");
    return 0;
}
