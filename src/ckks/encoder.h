/**
 * @file
 * CKKS canonical-embedding encoder/decoder.
 *
 * A slot vector z in C^{N/2} is mapped to a real polynomial m(X) whose
 * evaluations at the primitive 2N-th roots of unity indexed by the
 * rotation group {5^j mod 2N} equal z (up to the scale Delta). The
 * "special FFT" pair below follows the structure of the original HEAAN
 * implementation; cyclic slot rotation by r corresponds to the Galois
 * automorphism X -> X^{5^r mod 2N}, and complex conjugation of all slots
 * to X -> X^{2N-1}.
 */

#ifndef CIFLOW_CKKS_ENCODER_H
#define CIFLOW_CKKS_ENCODER_H

#include <complex>
#include <vector>

#include "ckks/params.h"
#include "hemath/poly.h"

namespace ciflow
{

using cplx = std::complex<double>;

/** Encode/decode between slot vectors and RNS plaintext polynomials. */
class Encoder
{
  public:
    explicit Encoder(const CkksContext &ctx);

    /** Number of usable slots (N/2). */
    std::size_t slots() const { return nSlots; }

    /**
     * Encode a slot vector (length <= slots(); shorter vectors are
     * zero-padded) into a coefficient-domain RNS plaintext at `level`
     * with scale `scale` (0 = context default).
     */
    RnsPoly encode(const std::vector<cplx> &z, std::size_t level,
                   double scale = 0.0) const;

    /** Real-vector convenience overload. */
    RnsPoly encode(const std::vector<double> &z, std::size_t level,
                   double scale = 0.0) const;

    /**
     * Decode a coefficient-domain RNS plaintext back to slots, dividing
     * by `scale`.
     */
    std::vector<cplx> decode(const RnsPoly &pt, double scale) const;

    /** Galois element for a cyclic left rotation by r slots. */
    std::size_t galoisForRotation(long r) const;

    /** Galois element for slot-wise complex conjugation. */
    std::size_t galoisForConjugation() const { return 2 * degree - 1; }

  private:
    /** Decode-direction special FFT (coefficients -> slots). */
    void fftSpecial(std::vector<cplx> &vals) const;
    /** Encode-direction inverse special FFT (slots -> coefficients). */
    void fftSpecialInv(std::vector<cplx> &vals) const;

    const CkksContext &ctx;
    std::size_t degree;
    std::size_t nSlots;
    std::size_t m; // 2N
    std::vector<std::size_t> rotGroup; // 5^j mod 2N
    std::vector<cplx> ksiPows;         // e^{2 pi i k / M}, k in [0, M]
};

} // namespace ciflow

#endif // CIFLOW_CKKS_ENCODER_H
