/**
 * @file
 * Ablation study (beyond the paper's figures): DRAM traffic and runtime
 * of each dataflow as the on-chip data memory sweeps from the minimum
 * feasible size to 512 MiB. This isolates the design choice DESIGN.md
 * calls out — OC's advantage should be largest at small capacities and
 * all dataflows should converge to compulsory traffic once everything
 * fits on-chip. Each capacity point needs its own task graphs, so the
 * whole grid of builds is fanned out on the ExperimentRunner pool.
 */

#include <array>
#include <cstdio>

#include "bench_util.h"
#include "rpu/runner.h"

using namespace ciflow;

int
main()
{
    benchutil::header("Ablation: on-chip data capacity sweep "
                      "(evks streamed, 64 GB/s)");

    const double sizes_mib[] = {8, 16, 32, 64, 128, 256, 512};
    ExperimentRunner runner;
    for (const char *name : {"ARK", "BTS3"}) {
        const HksParams &b = benchmarkByName(name);
        std::printf("\n# %s  (input %.0f MiB, evk %.0f MiB, temp %.0f "
                    "MiB)\n",
                    name, b.inputBytes() / 1048576.0,
                    b.evkBytes() / 1048576.0,
                    b.tempBytes() / 1048576.0);
        std::printf("capacity_mib,mp_traffic_mb,dc_traffic_mb,"
                    "oc_traffic_mb,mp_ms,dc_ms,oc_ms\n");

        struct Cell
        {
            double traffic_mb = 0, ms = 0;
        };
        const std::size_t n = std::size(sizes_mib);
        std::vector<std::array<Cell, 3>> cells(n);
        std::vector<bool> feasible(n, true);

        std::vector<std::function<void()>> jobs;
        for (std::size_t s = 0; s < n; ++s) {
            MemoryConfig mem{
                static_cast<std::uint64_t>(sizes_mib[s] * 1024 * 1024),
                false};
            for (Dataflow d : allDataflows())
                feasible[s] = feasible[s] &&
                              mem.dataCapacityBytes >=
                                  minDataCapacity(b, d);
            if (!feasible[s])
                continue;
            for (std::size_t j = 0; j < 3; ++j)
                jobs.push_back([&, mem, s, j] {
                    auto exp =
                        runner.experiment(b, allDataflows()[j], mem);
                    cells[s][j].traffic_mb =
                        static_cast<double>(
                            exp->graph().trafficBytes()) /
                        1048576.0;
                    cells[s][j].ms = exp->simulate(64.0).runtimeMs();
                });
        }
        runner.runAll(jobs);

        for (std::size_t s = 0; s < n; ++s) {
            if (!feasible[s]) {
                std::printf("%g,(below minimum capacity)\n",
                            sizes_mib[s]);
                continue;
            }
            std::printf("%g,%.0f,%.0f,%.0f,%.2f,%.2f,%.2f\n",
                        sizes_mib[s], cells[s][0].traffic_mb,
                        cells[s][1].traffic_mb, cells[s][2].traffic_mb,
                        cells[s][0].ms, cells[s][1].ms, cells[s][2].ms);
        }
    }
    std::printf("\nExpectation: the MP/OC traffic gap shrinks as "
                "capacity grows and vanishes once the full working set "
                "fits (cf. §IV: with unlimited memory the dataflows "
                "converge).\n");
    return 0;
}
