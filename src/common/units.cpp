#include "common/units.h"

#include <cstdio>

namespace ciflow
{

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[64];
    if (bytes >= GiB) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      static_cast<double>(bytes) / GiB);
    } else if (bytes >= MiB) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB",
                      static_cast<double>(bytes) / MiB);
    } else if (bytes >= KiB) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB",
                      static_cast<double>(bytes) / KiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return std::string(buf);
}

} // namespace ciflow
