/**
 * @file
 * Unit tests for primality testing and NTT-prime generation.
 */

#include <gtest/gtest.h>

#include "hemath/primes.h"

using namespace ciflow;

TEST(Primes, SmallKnownValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(97));
    EXPECT_FALSE(isPrime(561));   // Carmichael number
    EXPECT_FALSE(isPrime(41041)); // Carmichael number
}

TEST(Primes, LargeKnownValues)
{
    EXPECT_TRUE(isPrime(1000000007ull));
    EXPECT_TRUE(isPrime((1ull << 61) - 1)); // Mersenne prime M61
    EXPECT_FALSE(isPrime((1ull << 59) - 1));
    // Largest 64-bit prime, and an obvious composite neighbor.
    EXPECT_TRUE(isPrime(18446744073709551557ull));
    EXPECT_FALSE(isPrime(18446744073709551555ull));
}

TEST(Primes, GeneratedPrimesAreNttFriendly)
{
    const std::size_t n = 1 << 12;
    auto primes = generateNttPrimes(5, 45, n);
    ASSERT_EQ(primes.size(), 5u);
    for (u64 q : primes) {
        EXPECT_TRUE(isPrime(q));
        EXPECT_EQ((q - 1) % (2 * n), 0u);
        EXPECT_GE(q, 1ull << 44);
        EXPECT_LT(q, 1ull << 45);
    }
    // All distinct.
    for (std::size_t i = 0; i < primes.size(); ++i)
        for (std::size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
}

TEST(Primes, AvoidListRespected)
{
    const std::size_t n = 1 << 10;
    auto first = generateNttPrimes(3, 40, n);
    auto second = generateNttPrimes(3, 40, n, first);
    for (u64 q : second)
        for (u64 p : first)
            EXPECT_NE(q, p);
}

TEST(Primes, PrimitiveRootHasOrder2N)
{
    const std::size_t n = 1 << 10;
    auto primes = generateNttPrimes(3, 45, n);
    for (u64 q : primes) {
        u64 psi = findPrimitiveRoot2N(q, n);
        EXPECT_EQ(powMod(psi, n, q), q - 1);          // psi^N = -1
        EXPECT_EQ(powMod(psi, 2 * n, q), 1u);         // psi^{2N} = 1
        EXPECT_NE(powMod(psi, n / 2, q), q - 1);      // order not < 2N
    }
}

TEST(Primes, DifferentDegreesDifferentCongruence)
{
    for (std::size_t log_n : {10u, 12u, 14u}) {
        const std::size_t n = 1ull << log_n;
        auto p = generateNttPrimes(1, 50, n);
        EXPECT_EQ((p[0] - 1) % (2 * n), 0u);
    }
}
