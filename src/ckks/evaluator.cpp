#include "ckks/evaluator.h"

#include <cmath>

#include "common/logging.h"

namespace ciflow
{

namespace
{

void
checkAligned(const Ciphertext &a, const Ciphertext &b)
{
    fatalIf(a.level != b.level, "ciphertext level mismatch");
    fatalIf(std::abs(a.scale - b.scale) > 1e-6 * a.scale,
            "ciphertext scale mismatch");
}

} // namespace

Ciphertext
Evaluator::add(const Ciphertext &ct1, const Ciphertext &ct2) const
{
    checkAligned(ct1, ct2);
    Ciphertext out = ct1;
    out.c0.addInPlace(ct2.c0);
    out.c1.addInPlace(ct2.c1);
    return out;
}

Ciphertext
Evaluator::sub(const Ciphertext &ct1, const Ciphertext &ct2) const
{
    checkAligned(ct1, ct2);
    Ciphertext out = ct1;
    out.c0.subInPlace(ct2.c0);
    out.c1.subInPlace(ct2.c1);
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &ct, const RnsPoly &pt) const
{
    Ciphertext out = ct;
    RnsPoly m = pt;
    m.toEval(ctx.ntt());
    out.c0.addInPlace(m);
    return out;
}

Ciphertext
Evaluator::mulPlain(const Ciphertext &ct, const RnsPoly &pt,
                    double pt_scale) const
{
    Ciphertext out = ct;
    RnsPoly m = pt;
    m.toEval(ctx.ntt());
    out.c0.mulPointwiseInPlace(m);
    out.c1.mulPointwiseInPlace(m);
    out.scale = ct.scale * pt_scale;
    return out;
}

Ciphertext
Evaluator::multiply(const Ciphertext &ct1, const Ciphertext &ct2,
                    const EvalKey &rlk, ScheduleOrder order) const
{
    fatalIf(ct1.level != ct2.level, "multiply level mismatch");

    // Tensor product: (d0, d1, d2) = (c0 c0', c0 c1' + c1 c0', c1 c1').
    RnsPoly d0 = ct1.c0;
    d0.mulPointwiseInPlace(ct2.c0);

    RnsPoly t01 = ct1.c0;
    t01.mulPointwiseInPlace(ct2.c1);
    RnsPoly t10 = ct1.c1;
    t10.mulPointwiseInPlace(ct2.c0);
    t01.addInPlace(t10);

    RnsPoly d2 = ct1.c1;
    d2.mulPointwiseInPlace(ct2.c1);

    // Relinearize d2: one full hybrid key switch.
    auto ks = switcher.keySwitch(d2, rlk, ct1.level, order);

    Ciphertext out;
    out.c0 = std::move(d0);
    out.c0.addInPlace(ks.first);
    out.c1 = std::move(t01);
    out.c1.addInPlace(ks.second);
    out.scale = ct1.scale * ct2.scale;
    out.level = ct1.level;
    return out;
}

Ciphertext
Evaluator::rescale(const Ciphertext &ct) const
{
    fatalIf(ct.level == 0, "cannot rescale at level 0");
    const std::size_t ell = ct.level;
    const u64 q_last = ct.c0.modulus(ell);

    Ciphertext out;
    out.level = ct.level - 1;
    out.scale = ct.scale / static_cast<double>(q_last);

    for (int which = 0; which < 2; ++which) {
        const RnsPoly &src = which == 0 ? ct.c0 : ct.c1;
        // Bring the dropped tower to coefficient form to re-reduce it
        // modulo the remaining primes with a centered lift.
        std::vector<u64> last = src.tower(ell);
        ctx.ntt().table(ctx.n(), q_last).inverse(last);

        RnsPoly dst(ctx.n(), ctx.basisQ(out.level), Domain::Eval);
        for (std::size_t i = 0; i <= out.level; ++i) {
            const u64 q = dst.modulus(i);
            const u64 inv = invMod(q_last % q, q);
            const u64 invp = preconMulMod(inv, q);
            std::vector<u64> lift(ctx.n());
            for (std::size_t k = 0; k < ctx.n(); ++k) {
                long long c = toCentered(last[k], q_last);
                lift[k] = signedToMod(c, q);
            }
            ctx.ntt().table(ctx.n(), q).forward(lift);
            for (std::size_t k = 0; k < ctx.n(); ++k) {
                u64 v = subMod(src.tower(i)[k], lift[k], q);
                dst.tower(i)[k] = mulModPrecon(v, inv, invp, q);
            }
        }
        (which == 0 ? out.c0 : out.c1) = std::move(dst);
    }
    return out;
}

Ciphertext
Evaluator::levelReduce(const Ciphertext &ct,
                       std::size_t target_level) const
{
    fatalIf(target_level > ct.level, "levelReduce cannot raise levels");
    Ciphertext out;
    out.c0 = ct.c0.firstTowers(target_level + 1);
    out.c1 = ct.c1.firstTowers(target_level + 1);
    out.scale = ct.scale;
    out.level = target_level;
    return out;
}

Ciphertext
Evaluator::addScalar(const Ciphertext &ct, double c) const
{
    // A constant polynomial evaluates to the constant in every slot, so
    // in the evaluation domain it is added to every position.
    Ciphertext out = ct;
    long long v = llround(c * ct.scale);
    for (std::size_t i = 0; i < out.c0.towerCount(); ++i) {
        const u64 q = out.c0.modulus(i);
        const u64 vm = signedToMod(v, q);
        for (std::size_t k = 0; k < ctx.n(); ++k)
            out.c0.tower(i)[k] = addMod(out.c0.tower(i)[k], vm, q);
    }
    return out;
}

Ciphertext
Evaluator::mulScalar(const Ciphertext &ct, double c) const
{
    fatalIf(ct.level == 0, "mulScalar needs a level for rescaling");
    Ciphertext out = ct;
    long long v = llround(c * ctx.scale());
    for (int which = 0; which < 2; ++which) {
        RnsPoly &p = which == 0 ? out.c0 : out.c1;
        std::vector<u64> scalars(p.towerCount());
        for (std::size_t i = 0; i < p.towerCount(); ++i)
            scalars[i] = signedToMod(v, p.modulus(i));
        p.mulScalarInPlace(scalars);
    }
    out.scale = ct.scale * ctx.scale();
    return rescale(out);
}

Ciphertext
Evaluator::negate(const Ciphertext &ct) const
{
    Ciphertext out = ct;
    out.c0.negateInPlace();
    out.c1.negateInPlace();
    return out;
}

Ciphertext
Evaluator::square(const Ciphertext &ct, const EvalKey &rlk,
                  ScheduleOrder order) const
{
    RnsPoly d0 = ct.c0;
    d0.mulPointwiseInPlace(ct.c0);

    RnsPoly d1 = ct.c0;
    d1.mulPointwiseInPlace(ct.c1);
    RnsPoly two = d1;
    d1.addInPlace(two); // 2 c0 c1

    RnsPoly d2 = ct.c1;
    d2.mulPointwiseInPlace(ct.c1);

    auto ks = switcher.keySwitch(d2, rlk, ct.level, order);
    Ciphertext out;
    out.c0 = std::move(d0);
    out.c0.addInPlace(ks.first);
    out.c1 = std::move(d1);
    out.c1.addInPlace(ks.second);
    out.scale = ct.scale * ct.scale;
    out.level = ct.level;
    return out;
}

Ciphertext
Evaluator::evalPoly(const Ciphertext &ct,
                    const std::vector<double> &coeffs,
                    const EvalKey &rlk) const
{
    fatalIf(coeffs.size() < 2, "evalPoly needs degree >= 1");
    const std::size_t deg = coeffs.size() - 1;
    fatalIf(ct.level < deg, "not enough levels for this degree");

    // Horner: acc = c_d * x + c_{d-1}; acc = acc * x + c_i ...
    Ciphertext acc = mulScalar(ct, coeffs[deg]);
    acc = addScalar(acc, coeffs[deg - 1]);
    for (std::size_t i = deg - 1; i-- > 0;) {
        Ciphertext x_aligned = levelReduce(ct, acc.level);
        acc = rescale(multiply(acc, x_aligned, rlk));
        acc = addScalar(acc, coeffs[i]);
    }
    return acc;
}

Ciphertext
Evaluator::applyGalois(const Ciphertext &ct, std::size_t g,
                       const GaloisKeys &gk, ScheduleOrder order) const
{
    auto it = gk.keys.find(g);
    fatalIf(it == gk.keys.end(),
            "missing Galois key for requested rotation");

    // Apply the automorphism in coefficient domain.
    RnsPoly c0 = ct.c0;
    c0.toCoeff(ctx.ntt());
    c0 = c0.automorphism(g);
    c0.toEval(ctx.ntt());

    RnsPoly c1 = ct.c1;
    c1.toCoeff(ctx.ntt());
    c1 = c1.automorphism(g);
    c1.toEval(ctx.ntt());

    // (c0^g, c1^g) decrypts under s(X^g); switch c1^g back to s.
    auto ks = switcher.keySwitch(c1, it->second, ct.level, order);

    Ciphertext out;
    out.c0 = std::move(c0);
    out.c0.addInPlace(ks.first);
    out.c1 = std::move(ks.second);
    out.scale = ct.scale;
    out.level = ct.level;
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext &ct, long r, const GaloisKeys &gk,
                  ScheduleOrder order) const
{
    const std::size_t m = 2 * ctx.n();
    long n_slots = static_cast<long>(ctx.slots());
    long rr = ((r % n_slots) + n_slots) % n_slots;
    std::size_t g = 1;
    for (long i = 0; i < rr; ++i)
        g = (g * 5) % m;
    return applyGalois(ct, g, gk, order);
}

Ciphertext
Evaluator::conjugate(const Ciphertext &ct, const GaloisKeys &gk,
                     ScheduleOrder order) const
{
    return applyGalois(ct, 2 * ctx.n() - 1, gk, order);
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext &ct,
                         const std::vector<long> &rotations,
                         const GaloisKeys &gk) const
{
    // One ModUp extension shared by every rotation: the automorphism
    // commutes with digit decomposition, basis conversion and the NTT
    // (they are all coefficient-index-wise maps), so permuting the
    // extended digits equals extending the permuted polynomial.
    std::vector<RnsPoly> ext =
        switcher.modUpExtend(ct.c1, ct.level);

    const std::size_t m = 2 * ctx.n();
    const long n_slots = static_cast<long>(ctx.slots());
    std::vector<Ciphertext> out;
    out.reserve(rotations.size());
    for (long r : rotations) {
        long rr = ((r % n_slots) + n_slots) % n_slots;
        std::size_t g = 1;
        for (long i = 0; i < rr; ++i)
            g = (g * 5) % m;
        auto it = gk.keys.find(g);
        fatalIf(it == gk.keys.end(),
                "missing Galois key for hoisted rotation");

        std::vector<RnsPoly> ext_g;
        ext_g.reserve(ext.size());
        for (const RnsPoly &e : ext)
            ext_g.push_back(e.automorphismEval(g));
        auto ks = switcher.applyExtended(ext_g, it->second, ct.level);

        Ciphertext res;
        res.c0 = ct.c0.automorphismEval(g);
        res.c0.addInPlace(ks.first);
        res.c1 = std::move(ks.second);
        res.scale = ct.scale;
        res.level = ct.level;
        out.push_back(std::move(res));
    }
    return out;
}

} // namespace ciflow
