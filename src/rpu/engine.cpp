#include "rpu/engine.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.h"

namespace ciflow
{

namespace
{

/**
 * Per-thread replay buffers: rates and scratch are reused across every
 * replay on this thread, so repeated simulates (sweeps, bisection)
 * allocate nothing once warm — including on ExperimentRunner workers,
 * which each get their own instance.
 */
struct ReplayTls
{
    sim::ReplayRates rates;
    sim::ReplayScratch scratch;
};

ReplayTls &
replayTls()
{
    thread_local ReplayTls tls;
    return tls;
}

} // namespace

ChannelPlacer::ChannelPlacer(ChannelPolicy policy, std::size_t channels)
    : pol(policy), nchan(channels > 0 ? channels : 1),
      dedicateEvk(policy == ChannelPolicy::EvkDedicated && nchan >= 2),
      dataChans(dedicateEvk ? nchan - 1 : nchan)
{
    if (pol == ChannelPolicy::LeastLoaded)
        bytesAssigned.assign(nchan, 0);
}

std::size_t
ChannelPlacer::place(std::uint64_t bytes, bool is_evk)
{
    if (pol == ChannelPolicy::LeastLoaded) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < nchan; ++c)
            if (bytesAssigned[c] < bytesAssigned[best])
                best = c;
        bytesAssigned[best] += bytes;
        return best;
    }
    if (dedicateEvk && is_evk)
        return nchan - 1;
    const std::size_t c = rr % dataChans;
    ++rr;
    return c;
}

std::size_t
ChannelPlacer::place(const Task &t)
{
    return place(t.bytes, t.isEvk);
}

double
RpuEngine::arithTaskSeconds(const Task &t) const
{
    return static_cast<double>(t.modOps) / cfg.modopsPerSec();
}

double
RpuEngine::shuffleTaskSeconds(const Task &t, const CodeGen &cg) const
{
    InstrCounts ic = cg.forComputeTask(t);
    // The shuffle crossbar moves one element per lane per cycle.
    const double shuf_elems = static_cast<double>(ic.shuffle) *
                              static_cast<double>(cg.vectorLen());
    return shuf_elems / cfg.shuffleElemsPerSec();
}

double
RpuEngine::computeTaskSeconds(const Task &t, const CodeGen &cg) const
{
    // Arithmetic pipe time follows the modular-op count (the paper's
    // MODOPS metric); the shuffle crossbar overlaps on the fused pipe,
    // so a task costs the slower of the two.
    return std::max(arithTaskSeconds(t), shuffleTaskSeconds(t, cg));
}

double
RpuEngine::memTaskSeconds(const Task &t) const
{
    return static_cast<double>(t.bytes) / cfg.channelBytesPerSec();
}

void
RpuEngine::lowerTask(const Task &t, const CodeGen &cg,
                     ChannelPlacer &placer, sim::ResourceId base,
                     std::vector<sim::CompiledOp> &ops) const
{
    const std::size_t nchan = cfg.channelCount();
    if (t.kind == TaskKind::Compute) {
        const InstrCounts ic = cg.forComputeTask(t);
        const double shuf_elems = static_cast<double>(ic.shuffle) *
                                  static_cast<double>(cg.vectorLen());
        const sim::ResourceId pipe0 =
            base + static_cast<sim::ResourceId>(nchan);
        if (cfg.splitComputePipes) {
            sim::CompiledOp a;
            a.resource = pipe0;
            a.work[kWorkArith] = static_cast<double>(t.modOps);
            ops.push_back(a);
            if (t.shuffleOps > 0) {
                sim::CompiledOp s;
                s.resource = pipe0 + 1;
                s.work[kWorkShuffle] = shuf_elems;
                ops.push_back(s);
            }
        } else {
            // The fused pipe costs the slower half; replay's
            // component max reproduces computeTaskSeconds exactly.
            sim::CompiledOp o;
            o.resource = pipe0;
            o.work[kWorkArith] = static_cast<double>(t.modOps);
            o.work[kWorkShuffle] = shuf_elems;
            ops.push_back(o);
        }
    } else {
        sim::CompiledOp o;
        o.resource =
            base + static_cast<sim::ResourceId>(placer.place(t));
        o.bytes = static_cast<double>(t.bytes);
        ops.push_back(o);
    }
}

void
RpuEngine::compileInto(const TaskGraph &g, sim::CompiledSchedule &cs,
                       PatchableSchedule *meta) const
{
    g.validate();

    CodeGen cg(cfg.vectorLen);

    // Channels are registered first, so their ResourceIds are 0..N-1.
    const std::size_t nchan = cfg.channelCount();
    for (std::size_t c = 0; c < nchan; ++c)
        cs.addResource("dram" + std::to_string(c));
    if (cfg.splitComputePipes) {
        cs.addResource("arith");
        cs.addResource("shuffle");
    } else {
        cs.addResource("compute");
    }

    // Exact totals up front so the CSR build never reallocates: one op
    // per task, plus one extra for split-pipe compute tasks that carry
    // a shuffle half.
    std::size_t ndeps = 0, nops = 0;
    for (const Task &t : g.tasks()) {
        ndeps += t.deps.size();
        nops += 1;
        if (cfg.splitComputePipes && t.kind == TaskKind::Compute &&
            t.shuffleOps > 0)
            nops += 1;
    }
    cs.reserve(g.size(), ndeps, nops);
    if (meta) {
        meta->roles.reserve(nops);
        meta->memBytes.reserve(nops);
    }

    ChannelPlacer placer(cfg.channelPolicy, nchan);
    std::vector<sim::CompiledOp> ops;
    for (const Task &t : g.tasks()) {
        ops.clear();
        lowerTask(t, cg, placer, 0, ops);
        cs.addTask(t.deps.data(), t.deps.size(), ops.data(),
                   ops.size());
        if (meta) {
            if (t.kind == TaskKind::Compute) {
                meta->roles.push_back(OpRole::Pipe0);
                meta->memBytes.push_back(0);
                if (ops.size() > 1) {
                    meta->roles.push_back(OpRole::Pipe1);
                    meta->memBytes.push_back(0);
                }
            } else {
                meta->roles.push_back(t.isEvk ? OpRole::MemEvk
                                              : OpRole::Mem);
                meta->memBytes.push_back(t.bytes);
            }
        }
    }
    cs.setLayoutTag(RpuLayout::of(cfg).tag());
}

sim::CompiledSchedule
RpuEngine::compile(const TaskGraph &g) const
{
    sim::CompiledSchedule cs;
    compileInto(g, cs, nullptr);
    return cs;
}

PatchableSchedule
RpuEngine::compilePatchable(const TaskGraph &g) const
{
    PatchableSchedule ps;
    compileInto(g, ps.schedule, &ps);
    ps.layout = RpuLayout::of(cfg);

    // Role-split index for recompileChannels' tight rebind loops.
    for (std::size_t i = 0; i < ps.roles.size(); ++i) {
        switch (ps.roles[i]) {
        case OpRole::Mem:
        case OpRole::MemEvk:
            ps.memIdx.push_back(static_cast<std::uint32_t>(i));
            ps.memIsEvk.push_back(ps.roles[i] == OpRole::MemEvk ? 1
                                                                : 0);
            ps.memIdxBytes.push_back(ps.memBytes[i]);
            break;
        case OpRole::Pipe0:
            ps.pipe0Idx.push_back(static_cast<std::uint32_t>(i));
            break;
        case OpRole::Pipe1:
            ps.pipe1Idx.push_back(static_cast<std::uint32_t>(i));
            break;
        }
    }
    return ps;
}

void
RpuEngine::recompileChannels(PatchableSchedule &ps) const
{
    const RpuLayout want = RpuLayout::of(cfg);
    panicIf(want.splitComputePipes != ps.layout.splitComputePipes ||
                want.vectorLen != ps.layout.vectorLen,
            "channel repatch cannot change the pipe split or vector "
            "length: those shape the skeleton, recompile from the "
            "graph");
    panicIf(ps.roles.size() != ps.schedule.opCount(),
            "patchable schedule metadata does not cover its op stream");

    panicIf(ps.memIdx.size() + ps.pipe0Idx.size() +
                    ps.pipe1Idx.size() !=
                ps.roles.size(),
            "patchable schedule index does not cover its op stream");

    const std::size_t nchan = cfg.channelCount();
    sim::BindingView b =
        ps.schedule.patchBegin(nchan + cfg.computePipeCount());
    const sim::ResourceId pipe0 = static_cast<sim::ResourceId>(nchan);

    // Resource names and pipe bindings depend only on the channel
    // count; policy-only moves skip both.
    if (nchan != ps.layout.memChannels) {
        char name[32];
        for (std::size_t c = 0; c < nchan; ++c) {
            std::snprintf(name, sizeof(name), "dram%zu", c);
            ps.schedule.patchResourceName(
                static_cast<sim::ResourceId>(c), name);
        }
        if (cfg.splitComputePipes) {
            ps.schedule.patchResourceName(pipe0, "arith");
            ps.schedule.patchResourceName(pipe0 + 1, "shuffle");
        } else {
            ps.schedule.patchResourceName(pipe0, "compute");
        }
        for (std::uint32_t i : ps.pipe0Idx)
            b.opRes[i] = pipe0;
        for (std::uint32_t i : ps.pipe1Idx)
            b.opRes[i] = pipe0 + 1;
    }

    // Re-place the memory ops in op-stream order — the order every
    // policy's placement sequence is defined over. Each policy runs
    // as a tight loop over the role-split index instead of a per-op
    // ChannelPlacer call; the loops reproduce ChannelPlacer's
    // sequences exactly, and tests/test_patch.cpp pins the patched
    // binding bit-identical to a fresh compile across policies.
    const std::size_t nmem = ps.memIdx.size();
    const std::uint32_t *idx = ps.memIdx.data();
    sim::ResourceId *res = b.opRes;
    if (cfg.channelPolicy == ChannelPolicy::LeastLoaded) {
        std::vector<std::uint64_t> load(nchan, 0);
        for (std::size_t k = 0; k < nmem; ++k) {
            std::size_t best = 0;
            for (std::size_t c = 1; c < nchan; ++c)
                if (load[c] < load[best])
                    best = c;
            load[best] += ps.memIdxBytes[k];
            res[idx[k]] = static_cast<sim::ResourceId>(best);
        }
    } else if (cfg.channelPolicy == ChannelPolicy::EvkDedicated &&
               nchan >= 2) {
        // Evk ops pin to the last channel and do not advance the
        // round-robin cursor (exactly ChannelPlacer's rule).
        const std::size_t data_chans = nchan - 1;
        const sim::ResourceId evk_chan =
            static_cast<sim::ResourceId>(nchan - 1);
        std::size_t rr = 0;
        for (std::size_t k = 0; k < nmem; ++k) {
            if (ps.memIsEvk[k] != 0) {
                res[idx[k]] = evk_chan;
            } else {
                res[idx[k]] = static_cast<sim::ResourceId>(rr);
                rr = rr + 1 == data_chans ? 0 : rr + 1;
            }
        }
    } else {
        // Interleave (and EvkDedicated below two channels): plain
        // round-robin over all channels, evk ops included.
        std::size_t rr = 0;
        for (std::size_t k = 0; k < nmem; ++k) {
            res[idx[k]] = static_cast<sim::ResourceId>(rr);
            rr = rr + 1 == nchan ? 0 : rr + 1;
        }
    }

    ps.schedule.patchCommit(want.tag());
    ps.layout = want;
}

void
RpuEngine::rates(const sim::CompiledSchedule &cs,
                 sim::ReplayRates &r) const
{
    const std::size_t nchan = cfg.channelCount();
    // The base tag identifies the layout the *current* binding targets
    // (patches re-stamp it), so rates built here are valid for exactly
    // this revision of the schedule.
    panicIf(cs.baseLayoutTag() != RpuLayout::of(cfg).tag(),
            "compiled schedule layout does not match config");
    panicIf(cs.resourceCount() != nchan + cfg.computePipeCount(),
            "compiled schedule resource count does not match config");
    // Pipes never carry bytes; 1.0 keeps their (zero) byte component
    // well defined.
    r.bytesPerSec.assign(cs.resourceCount(), 1.0);
    for (std::size_t c = 0; c < nchan; ++c)
        r.bytesPerSec[c] = cfg.channelBytesPerSec(c);
    r.workPerSec[kWorkArith] = cfg.modopsPerSec();
    r.workPerSec[kWorkShuffle] = cfg.shuffleElemsPerSec();
}

double
RpuEngine::replayRuntime(const sim::CompiledSchedule &cs) const
{
    ReplayTls &tls = replayTls();
    rates(cs, tls.rates);
    return cs.replay(tls.rates, tls.scratch);
}

SimStats
RpuEngine::replay(const sim::CompiledSchedule &cs,
                  const TaskGraph &g) const
{
    ReplayTls &tls = replayTls();
    rates(cs, tls.rates);
    const double makespan = cs.replay(tls.rates, tls.scratch);

    const std::size_t nchan = cfg.channelCount();
    const std::size_t nres = cs.resourceCount();
    SimStats s;
    s.runtime = makespan;
    s.memChannels = nchan;
    s.computePipes = cfg.computePipeCount();
    for (std::size_t c = 0; c < nchan; ++c)
        s.memBusy += tls.scratch.busy[c];
    for (std::size_t p = nchan; p < nres; ++p)
        s.compBusy += tls.scratch.busy[p];
    s.trafficBytes = g.trafficBytes();
    s.modOps = g.totalModOps();
    s.resources.reserve(nres);
    for (std::size_t r = 0; r < nres; ++r)
        s.resources.push_back({cs.resourceName(
                                   static_cast<sim::ResourceId>(r)),
                               tls.scratch.busy[r],
                               tls.scratch.jobs[r]});
    return s;
}

SimStats
RpuEngine::run(const TaskGraph &g) const
{
    return replay(compile(g), g);
}

SimStats
RpuEngine::runRebuild(const TaskGraph &g) const
{
    g.validate();

    CodeGen cg(cfg.vectorLen);
    sim::EventQueue eq;

    // Channels are registered first, so their ResourceIds are 0..N-1.
    const std::size_t nchan = cfg.channelCount();
    // Per-channel rates are hoisted out of the loop: equal for the
    // symmetric split, distinct under a channelGBps override.
    std::vector<double> chan_bps(nchan);
    for (std::size_t c = 0; c < nchan; ++c) {
        chan_bps[c] = cfg.channelBytesPerSec(c);
        eq.addChannel("dram" + std::to_string(c), chan_bps[c]);
    }

    sim::ResourceId comp = 0, arith = 0, shuf = 0;
    if (cfg.splitComputePipes) {
        arith = eq.addResource("arith");
        shuf = eq.addResource("shuffle");
    } else {
        comp = eq.addResource("compute");
    }

    ChannelPlacer placer(cfg.channelPolicy, nchan);
    std::vector<sim::SimOp> ops;
    for (const Task &t : g.tasks()) {
        ops.clear();
        if (t.kind == TaskKind::Compute) {
            if (cfg.splitComputePipes) {
                ops.push_back({arith, arithTaskSeconds(t)});
                if (t.shuffleOps > 0)
                    ops.push_back({shuf, shuffleTaskSeconds(t, cg)});
            } else {
                ops.push_back({comp, computeTaskSeconds(t, cg)});
            }
        } else {
            const std::size_t chan = placer.place(t);
            ops.push_back({static_cast<sim::ResourceId>(chan),
                           static_cast<double>(t.bytes) /
                               chan_bps[chan]});
        }
        eq.addTask(t.deps, ops);
    }

    sim::SimResult r = eq.run();

    SimStats s;
    s.runtime = r.makespan;
    s.memChannels = nchan;
    s.computePipes = cfg.computePipeCount();
    for (std::size_t c = 0; c < nchan; ++c)
        s.memBusy += r.resources[c].busySeconds;
    for (std::size_t p = nchan; p < r.resources.size(); ++p)
        s.compBusy += r.resources[p].busySeconds;
    s.trafficBytes = g.trafficBytes();
    s.modOps = g.totalModOps();
    s.resources = std::move(r.resources);
    return s;
}

} // namespace ciflow
