/**
 * @file
 * Shared evaluation cache for tuning strategies.
 *
 * Every strategy (exhaustive grid, coordinate descent, hill climb)
 * funnels point evaluations through one EvalCache, keyed by the
 * ExperimentKey of the graph the point replays plus every replay-side
 * knob. Simulation is a pure function of (graph, config), so a cache
 * hit returns the bit-identical Measurement the original evaluation
 * produced — strategies compared on one cache agree exactly wherever
 * they overlap, and revisited points (coordinate descent re-crossing
 * an axis, hill climbs circling a ridge) cost a map lookup instead of
 * a replay.
 */

#ifndef CIFLOW_TUNE_EVAL_CACHE_H
#define CIFLOW_TUNE_EVAL_CACHE_H

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "rpu/runner.h"
#include "tune/tune_space.h"

namespace ciflow::tune
{

/** The metrics of one evaluated tune point. */
struct Measurement
{
    /** End-to-end runtime (seconds) — the optimization objective. */
    double runtime = 0.0;
    /**
     * Aggregate off-chip bandwidth the point provisions, summed over
     * chips (GB/s) — the first Pareto cost axis.
     */
    double aggregateGBps = 0.0;
    /**
     * Aggregate data-memory capacity, summed over chips (bytes) —
     * the second Pareto cost axis.
     */
    double capacityBytes = 0.0;
    /** Interconnect cut payload (0 for single-chip points). */
    std::uint64_t cutBytes = 0;
    /** Materialized cross-chip transfers (0 for single-chip). */
    std::size_t transferTasks = 0;

    /**
     * True when this point is at least as good as `o` on every
     * objective (runtime, bandwidth, capacity) and strictly better on
     * one — the Pareto dominance test.
     */
    bool dominates(const Measurement &o) const;
};

/**
 * Cache key: the graph identity (ExperimentKey — benchmark, dataflow,
 * memory config) plus every replay-side knob of the point. Two points
 * with equal keys evaluate to bit-identical Measurements.
 */
struct EvalKey
{
    ExperimentKey graph;
    double bandwidthGBps = 64.0;
    double modopsMult = 1.0;
    double channelSkew = 1.0;
    std::size_t memChannels = 1;
    ChannelPolicy channelPolicy = ChannelPolicy::Interleave;
    std::size_t shards = 1;
    shard::Topology topology = shard::Topology::PointToPoint;
    shard::PartitionStrategy strategy =
        shard::PartitionStrategy::MinCutGreedy;

    bool operator==(const EvalKey &) const = default;
};

/** Field-mixing hash over EvalKey (extends ExperimentKeyHash). */
struct EvalKeyHash
{
    std::size_t operator()(const EvalKey &k) const;
};

/**
 * Thread-safe Measurement cache with hit/miss accounting. lookup()
 * and insert() are separate so the (slow) evaluation of a miss runs
 * outside the lock; two workers racing on one key may both evaluate,
 * and the second insert is dropped — both then hold bit-identical
 * values, so results are unaffected.
 */
class EvalCache
{
  public:
    /** True (and fills `out`, counting a hit) when `k` is cached. */
    bool lookup(const EvalKey &k, Measurement &out);
    /** Store the evaluation of `k` (first writer wins). */
    void insert(const EvalKey &k, const Measurement &m);

    /** Lookups served from the cache. */
    std::size_t hits() const;
    /** Lookups that required an evaluation. */
    std::size_t misses() const;
    /** Distinct points cached. */
    std::size_t size() const;

    /**
     * Record `n` evaluations served by the incremental patch path
     * (a layout sweep replaying a rebound schedule instead of a fresh
     * compile). Orthogonal to hit/miss accounting — a patched
     * evaluation is still a miss; this counter reports how much of
     * the missed work ran incrementally.
     */
    void notePatched(std::size_t n);
    /** Evaluations served by the patch path since construction. */
    std::size_t patchedEvals() const;

    /**
     * Record a batched-replay dispatch: `points` evaluations rode
     * kBatchLanes-wide replayMany blocks that provisioned `slots`
     * lane slots in total (slots >= points; the gap is lanes a
     * partially filled block walked for nothing). The ratio is the
     * batch-lane occupancy the tuner exports.
     */
    void noteBatchLanes(std::size_t points, std::size_t slots);
    /** Evaluations served by batched replay since construction. */
    std::size_t batchedPoints() const;
    /** Lane slots batched replay provisioned since construction. */
    std::size_t batchLaneSlots() const;

  private:
    mutable std::mutex mu;
    std::unordered_map<EvalKey, Measurement, EvalKeyHash> map;
    std::size_t nhits = 0;
    std::size_t nmisses = 0;
    std::size_t npatched = 0;
    std::size_t nbatched = 0;
    std::size_t nslots = 0;
};

} // namespace ciflow::tune

#endif // CIFLOW_TUNE_EVAL_CACHE_H
