#include "rpu/engine.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace ciflow
{

namespace
{

/**
 * Per-thread replay buffers: rates and scratch are reused across every
 * replay on this thread, so repeated simulates (sweeps, bisection)
 * allocate nothing once warm — including on ExperimentRunner workers,
 * which each get their own instance.
 */
struct ReplayTls
{
    sim::ReplayRates rates;
    sim::ReplayScratch scratch;
};

ReplayTls &
replayTls()
{
    thread_local ReplayTls tls;
    return tls;
}

} // namespace

double
RpuEngine::arithTaskSeconds(const Task &t) const
{
    return static_cast<double>(t.modOps) / cfg.modopsPerSec();
}

double
RpuEngine::shuffleTaskSeconds(const Task &t, const CodeGen &cg) const
{
    InstrCounts ic = cg.forComputeTask(t);
    // The shuffle crossbar moves one element per lane per cycle.
    const double shuf_elems = static_cast<double>(ic.shuffle) *
                              static_cast<double>(cg.vectorLen());
    return shuf_elems / cfg.shuffleElemsPerSec();
}

double
RpuEngine::computeTaskSeconds(const Task &t, const CodeGen &cg) const
{
    // Arithmetic pipe time follows the modular-op count (the paper's
    // MODOPS metric); the shuffle crossbar overlaps on the fused pipe,
    // so a task costs the slower of the two.
    return std::max(arithTaskSeconds(t), shuffleTaskSeconds(t, cg));
}

double
RpuEngine::memTaskSeconds(const Task &t) const
{
    return static_cast<double>(t.bytes) / cfg.channelBytesPerSec();
}

sim::CompiledSchedule
RpuEngine::compile(const TaskGraph &g) const
{
    g.validate();

    CodeGen cg(cfg.vectorLen);
    sim::CompiledSchedule cs;

    // Channels are registered first, so their ResourceIds are 0..N-1.
    const std::size_t nchan = cfg.channelCount();
    for (std::size_t c = 0; c < nchan; ++c)
        cs.addResource("dram" + std::to_string(c));

    sim::ResourceId comp = 0, arith = 0, shuf = 0;
    if (cfg.splitComputePipes) {
        arith = cs.addResource("arith");
        shuf = cs.addResource("shuffle");
    } else {
        comp = cs.addResource("compute");
    }

    // Round-robin counter for memory-task placement. With the
    // EvkDedicated policy (and >= 2 channels) evk streams own the last
    // channel and everything else interleaves over the rest.
    const bool dedicate_evk =
        cfg.channelPolicy == ChannelPolicy::EvkDedicated && nchan >= 2;
    const std::size_t data_chans = dedicate_evk ? nchan - 1 : nchan;
    std::size_t mem_rr = 0;

    std::vector<sim::CompiledOp> ops;
    for (const Task &t : g.tasks()) {
        ops.clear();
        if (t.kind == TaskKind::Compute) {
            const InstrCounts ic = cg.forComputeTask(t);
            const double shuf_elems =
                static_cast<double>(ic.shuffle) *
                static_cast<double>(cg.vectorLen());
            if (cfg.splitComputePipes) {
                sim::CompiledOp a;
                a.resource = arith;
                a.work[kWorkArith] = static_cast<double>(t.modOps);
                ops.push_back(a);
                if (t.shuffleOps > 0) {
                    sim::CompiledOp s;
                    s.resource = shuf;
                    s.work[kWorkShuffle] = shuf_elems;
                    ops.push_back(s);
                }
            } else {
                // The fused pipe costs the slower half; replay's
                // component max reproduces computeTaskSeconds exactly.
                sim::CompiledOp o;
                o.resource = comp;
                o.work[kWorkArith] = static_cast<double>(t.modOps);
                o.work[kWorkShuffle] = shuf_elems;
                ops.push_back(o);
            }
        } else {
            sim::CompiledOp o;
            if (dedicate_evk && t.isEvk) {
                o.resource = static_cast<sim::ResourceId>(nchan - 1);
            } else {
                o.resource =
                    static_cast<sim::ResourceId>(mem_rr % data_chans);
                ++mem_rr;
            }
            o.bytes = static_cast<double>(t.bytes);
            ops.push_back(o);
        }
        cs.addTask(t.deps, ops);
    }
    cs.setLayoutTag(RpuLayout::of(cfg).tag());
    return cs;
}

void
RpuEngine::rates(const sim::CompiledSchedule &cs,
                 sim::ReplayRates &r) const
{
    const std::size_t nchan = cfg.channelCount();
    panicIf(cs.layoutTag() != RpuLayout::of(cfg).tag(),
            "compiled schedule layout does not match config");
    panicIf(cs.resourceCount() != nchan + cfg.computePipeCount(),
            "compiled schedule resource count does not match config");
    // Pipes never carry bytes; 1.0 keeps their (zero) byte component
    // well defined.
    r.bytesPerSec.assign(cs.resourceCount(), 1.0);
    const double chan_bps = cfg.channelBytesPerSec();
    for (std::size_t c = 0; c < nchan; ++c)
        r.bytesPerSec[c] = chan_bps;
    r.workPerSec[kWorkArith] = cfg.modopsPerSec();
    r.workPerSec[kWorkShuffle] = cfg.shuffleElemsPerSec();
}

double
RpuEngine::replayRuntime(const sim::CompiledSchedule &cs) const
{
    ReplayTls &tls = replayTls();
    rates(cs, tls.rates);
    return cs.replay(tls.rates, tls.scratch);
}

SimStats
RpuEngine::replay(const sim::CompiledSchedule &cs,
                  const TaskGraph &g) const
{
    ReplayTls &tls = replayTls();
    rates(cs, tls.rates);
    const double makespan = cs.replay(tls.rates, tls.scratch);

    const std::size_t nchan = cfg.channelCount();
    const std::size_t nres = cs.resourceCount();
    SimStats s;
    s.runtime = makespan;
    s.memChannels = nchan;
    s.computePipes = cfg.computePipeCount();
    for (std::size_t c = 0; c < nchan; ++c)
        s.memBusy += tls.scratch.busy[c];
    for (std::size_t p = nchan; p < nres; ++p)
        s.compBusy += tls.scratch.busy[p];
    s.trafficBytes = g.trafficBytes();
    s.modOps = g.totalModOps();
    s.resources.reserve(nres);
    for (std::size_t r = 0; r < nres; ++r)
        s.resources.push_back({cs.resourceName(
                                   static_cast<sim::ResourceId>(r)),
                               tls.scratch.busy[r],
                               tls.scratch.jobs[r]});
    return s;
}

SimStats
RpuEngine::run(const TaskGraph &g) const
{
    return replay(compile(g), g);
}

SimStats
RpuEngine::runRebuild(const TaskGraph &g) const
{
    g.validate();

    CodeGen cg(cfg.vectorLen);
    sim::EventQueue eq;

    // Channels are registered first, so their ResourceIds are 0..N-1.
    const std::size_t nchan = cfg.channelCount();
    for (std::size_t c = 0; c < nchan; ++c)
        eq.addChannel("dram" + std::to_string(c),
                      cfg.channelBytesPerSec());

    sim::ResourceId comp = 0, arith = 0, shuf = 0;
    if (cfg.splitComputePipes) {
        arith = eq.addResource("arith");
        shuf = eq.addResource("shuffle");
    } else {
        comp = eq.addResource("compute");
    }

    const bool dedicate_evk =
        cfg.channelPolicy == ChannelPolicy::EvkDedicated && nchan >= 2;
    const std::size_t data_chans = dedicate_evk ? nchan - 1 : nchan;
    std::size_t mem_rr = 0;

    // All channels serve the same rate; hoisting it out of the loop
    // avoids a per-memory-task channel lookup (a dynamic_cast).
    const double chan_bps = cfg.channelBytesPerSec();

    std::vector<sim::SimOp> ops;
    for (const Task &t : g.tasks()) {
        ops.clear();
        if (t.kind == TaskKind::Compute) {
            if (cfg.splitComputePipes) {
                ops.push_back({arith, arithTaskSeconds(t)});
                if (t.shuffleOps > 0)
                    ops.push_back({shuf, shuffleTaskSeconds(t, cg)});
            } else {
                ops.push_back({comp, computeTaskSeconds(t, cg)});
            }
        } else {
            sim::ResourceId chan;
            if (dedicate_evk && t.isEvk) {
                chan = static_cast<sim::ResourceId>(nchan - 1);
            } else {
                chan = static_cast<sim::ResourceId>(mem_rr % data_chans);
                ++mem_rr;
            }
            ops.push_back(
                {chan, static_cast<double>(t.bytes) / chan_bps});
        }
        eq.addTask(t.deps, ops);
    }

    sim::SimResult r = eq.run();

    SimStats s;
    s.runtime = r.makespan;
    s.memChannels = nchan;
    s.computePipes = cfg.computePipeCount();
    for (std::size_t c = 0; c < nchan; ++c)
        s.memBusy += r.resources[c].busySeconds;
    for (std::size_t p = nchan; p < r.resources.size(); ++p)
        s.compBusy += r.resources[p].busySeconds;
    s.trafficBytes = g.trafficBytes();
    s.modOps = g.totalModOps();
    s.resources = std::move(r.resources);
    return s;
}

} // namespace ciflow
