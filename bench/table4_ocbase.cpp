/**
 * @file
 * Reproduces paper Table IV: the bandwidth OCbase at which the OC
 * dataflow matches the baseline (MP at 64 GB/s, evks on-chip), the
 * bandwidth saving, and OC's speedup over MP at that bandwidth. The
 * five benchmark rows run concurrently on the ExperimentRunner pool.
 */

#include <cstdio>

#include "bench_util.h"
#include "rpu/runner.h"

using namespace ciflow;

int
main()
{
    benchutil::header("Table IV: OC bandwidth for baseline-equivalent "
                      "performance (evks on-chip)");

    struct Ref
    {
        double bw, oc_ms, mp_ms, speedup;
    };
    const std::vector<std::pair<std::string, Ref>> paper = {
        {"BTS1", {25.6, 30.08, 39.13, 1.30}},
        {"BTS2", {12.8, 43.24, 104.85, 2.42}},
        {"BTS3", {32.0, 51.87, 71.50, 1.37}},
        {"ARK", {8.0, 9.01, 37.54, 4.16}},
        {"DPRIVE", {12.8, 7.81, 23.15, 2.96}},
    };

    std::printf("%-9s | %8s %8s | %6s %6s | %9s %9s | %8s %8s\n",
                "Benchmark", "OCbase", "paper", "Saved", "paper",
                "OC (ms)", "MP (ms)", "Speedup", "paper");
    benchutil::rule();

    MemoryConfig mem{32ull << 20, true};
    ExperimentRunner runner;

    struct Row
    {
        double ocbase = 0;
        SimStats oc, mp;
    };
    std::vector<Row> rows(paper.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < paper.size(); ++i)
        jobs.push_back([&, i] {
            const HksParams &b = benchmarkByName(paper[i].first);
            Row &r = rows[i];
            r.ocbase = ocBaseBandwidth(runner, b);
            r.oc = runner.experiment(b, Dataflow::OC, mem)
                       ->simulate(r.ocbase);
            r.mp = runner.experiment(b, Dataflow::MP, mem)
                       ->simulate(r.ocbase);
        });
    runner.runAll(jobs);

    for (std::size_t i = 0; i < paper.size(); ++i) {
        const Ref &ref = paper[i].second;
        const Row &r = rows[i];
        std::printf("%-9s | %8.1f %8.1f | %5.1fx %5.1fx | %9.2f %9.2f | "
                    "%7.2fx %7.2fx\n",
                    paper[i].first.c_str(), r.ocbase, ref.bw,
                    64.0 / r.ocbase, 64.0 / ref.bw, r.oc.runtimeMs(),
                    r.mp.runtimeMs(), r.mp.runtime / r.oc.runtime,
                    ref.speedup);
    }
    benchutil::rule();
    std::printf("Baseline = MP dataflow at 64 GB/s (peak DDR5) with all "
                "evks pre-loaded on-chip.\n");
    std::printf("Runtimes are reported at the OCbase bandwidth, as in "
                "the paper.\n");
    return 0;
}
