/**
 * @file
 * CompiledSchedule: a task graph flattened for repeated simulation.
 *
 * The sweep harnesses evaluate one graph at dozens of (bandwidth,
 * MODOPS) points, and bisection helpers run up to 61 simulates per
 * answer. Compiling the graph once moves every per-task cost to setup
 * time: tasks, dependencies and ops become CSR-style flat arrays
 * (offset-indexed), and each op's cost is stored as *numerators* —
 * a bandwidth-scaled byte payload, rate-scaled work components, and a
 * fixed-seconds component — so one sweep point is a single O(V+E) scan
 * over contiguous memory that divides numerators by that point's rates.
 *
 * Storing numerators instead of precomputed durations keeps replay
 * bit-identical to building the costs from scratch: the replay performs
 * the exact same IEEE division (numerator / rate) the eager path would,
 * with no double rounding through an intermediate "unit seconds" value.
 *
 * Op storage is structure-of-arrays: each cost component lives in its
 * own contiguous array (bytes[], work0[], work1[], seconds[],
 * postSeconds[], resource[]) instead of an array of 56-byte op records.
 * The scalar replay streams only the components it needs, and —
 * the reason for the layout — replayMany() walks the arrays *once*
 * while evaluating up to kBatchLanes replay points per op with
 * lane-contiguous scratch (finish[t*B + lane], freeAt[r*B + lane]), so
 * the per-op lane loop auto-vectorizes. Each lane performs the exact
 * same IEEE divides and maxes as a scalar replay at that point, so a
 * batched sweep is bit-identical lane-by-lane to per-point replay
 * (asserted by tests/test_compiled_schedule.cpp).
 *
 * replay() writes into caller-owned ReplayScratch buffers, so repeated
 * simulates — including parallel sweeps with per-thread scratch —
 * allocate nothing after the first call. replayMany() does the same
 * with a BatchScratch.
 *
 * Compiled state splits into two halves. The *skeleton* — CSR offsets
 * (depOff/depIds/opOff) and the op cost numerators (bytes, work,
 * seconds, postSeconds) — depends only on the task graph and the
 * lowering, not on which resource serves each op. The *binding* — the
 * per-op resource ids, the resource name table, and the layout tag —
 * is what a layout change (channel count, placement policy) actually
 * alters. The patch API (patchBegin / patchResourceName / patchCommit)
 * rewrites the binding in place against an untouched skeleton, so a
 * layout move costs one pass over the op stream instead of a full
 * re-lowering; clearTasks() additionally resets the skeleton while
 * keeping array capacity, for patches that change task structure
 * (shard moves). Each commit bumps a revision counter that is mixed
 * into layoutTag(), so stale rate vectors built against an earlier
 * binding still trip the tag-mismatch panic.
 */

#ifndef CIFLOW_SIM_COMPILED_SCHEDULE_H
#define CIFLOW_SIM_COMPILED_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/error.h"
#include "sim/event_queue.h"

namespace ciflow::sim
{

/** Rate-scaled work classes an op may carry (arithmetic, shuffle). */
constexpr std::size_t kWorkClasses = 2;

/**
 * Point-lanes one replayMany() block evaluates per op. Eight doubles
 * fill one AVX-512 register (two AVX2 registers); larger batches are
 * processed in blocks of this width, so scratch stays cache-resident
 * regardless of how many points a sweep submits.
 */
constexpr std::size_t kBatchLanes = 8;

/**
 * One compiled op: cost numerators bound to a resource. The duration at
 * a replay point is the max over its non-zero components:
 *
 *   max(bytes / bytesPerSec[resource],
 *       work[k] / workPerSec[k] for each class k,
 *       seconds)
 *
 * A fused compute op carries both work classes (the fused pipe costs
 * the slower of its arithmetic and shuffle halves); a split-pipe op
 * carries one; a memory op carries only bytes; a generic fixed-duration
 * op carries only seconds.
 *
 * postSeconds models propagation delay of pipelined links (LogP-style):
 * the resource is occupied for the duration above (the occupancy of a
 * transfer, bytes/bandwidth), but the op's result only becomes visible
 * to dependents postSeconds later. The next message on the same link
 * does not wait out the latency — cross-chip transfers queue on link
 * bandwidth and pipeline their propagation.
 *
 * This is the *build-time* record handed to addTask(); storage inside
 * the schedule is structure-of-arrays (see file comment).
 */
struct CompiledOp
{
    ResourceId resource = 0;
    /** Bandwidth-scaled payload, served at the resource's rate. */
    double bytes = 0.0;
    /** Rate-scaled work, served at ReplayRates::workPerSec[k]. */
    double work[kWorkClasses] = {0.0, 0.0};
    /** Fixed duration independent of any rate. */
    double seconds = 0.0;
    /** Delay after service before dependents may observe the result. */
    double postSeconds = 0.0;
};

/** The scaling knobs of one replay point. */
struct ReplayRates
{
    /**
     * Service rate per resource (bytes/s), indexed by ResourceId; must
     * have one entry per compiled resource. Entries for resources that
     * never carry bytes are ignored (keep them positive).
     */
    std::vector<double> bytesPerSec;
    /** Service rate of each work class (units/s). */
    double workPerSec[kWorkClasses] = {1.0, 1.0};
};

/**
 * Piecewise service-rate changes for faulted replay: per-resource
 * epochs at which the resource's effective speed changes. Resource
 * r's epochs are index range [off[r], off[r+1]) into the parallel
 * (at, mult) arrays; before its first epoch a resource serves at full
 * speed (multiplier 1), and from `at[j]` (inclusive) until the next
 * epoch it serves every rate-scaled cost component at `mult[j]` times
 * its ReplayRates rate. Epoch starts must be strictly increasing per
 * resource and multipliers finite and positive — chip *failures* are
 * not epochs (a dead chip is handled by failover re-placement, not by
 * an infinite duration). An empty table (no epochs at all) makes
 * replayPiecewise() delegate to replay() bit-identically.
 *
 * Built by fault::buildEpochs from a FaultTrace; kept as a plain CSR
 * struct so the sim layer stays independent of the fault model.
 */
struct RateEpochs
{
    /** Per-resource offsets into at/mult (resourceCount + 1 entries,
     * or empty when there are no epochs at all). */
    std::vector<std::uint32_t> off;
    /** Epoch start times (seconds, replay-local). */
    std::vector<double> at;
    /** Speed multiplier in effect from the matching `at` onward. */
    std::vector<double> mult;

    /** True when no resource has any epoch. */
    bool empty() const { return mult.empty(); }
};

/**
 * Reusable replay state. All buffers are resized (never shrunk) by
 * replay(); after the first call on a given schedule no allocation
 * happens. One instance per thread makes parallel sweeps allocation
 * free.
 */
struct ReplayScratch
{
    /** Finish time per task (valid after replay). */
    std::vector<double> finish;
    /** Next-free time per resource (valid after replay). */
    std::vector<double> freeAt;
    /** Busy seconds per resource (valid after replay). */
    std::vector<double> busy;
    /** Jobs served per resource (valid after replay). */
    std::vector<std::size_t> jobs;
    /** Per-resource epoch cursor (replayPiecewise only). */
    std::vector<std::uint32_t> epoch;
};

/**
 * Reusable replayMany() state: the lane-contiguous buffers of one
 * batch block plus the per-point makespans of the whole call. Like
 * ReplayScratch, buffers grow on first use and are then reused — one
 * instance per thread makes batched parallel sweeps allocation free.
 *
 * Per-lane layouts index as [t * lanes + lane] / [r * lanes + lane],
 * where `lanes` <= kBatchLanes is the width of the block. After a
 * replayMany() call the per-lane buffers hold the *last* block's
 * state (sweeps of up to kBatchLanes points see all their lanes);
 * `makespan` always covers every submitted point.
 */
struct BatchScratch
{
    /** Makespan per replay point (valid after replayMany, size n). */
    std::vector<double> makespan;
    /** Finish time per (task, lane) of the last block. */
    std::vector<double> finish;
    /** Next-free time per (resource, lane) of the last block. */
    std::vector<double> freeAt;
    /** Busy seconds per (resource, lane) of the last block. */
    std::vector<double> busy;
    /** Jobs per resource (rate-independent, so lane-invariant). */
    std::vector<std::size_t> jobs;
    /** Lane-transposed byte rates: bps[r * lanes + lane]. */
    std::vector<double> bps;
    /** Per-lane work-class rates. */
    std::vector<double> w0, w1;
};

/**
 * The externally visible identity of patch revision `rev` of a
 * schedule whose compiler stamped base tag `base`: the base tag itself
 * for a fresh compile (revision 0), and a revision-mixed value for
 * every patched binding. The multiplier is odd, so distinct revisions
 * of one base never collide with each other or with the base.
 */
constexpr std::uint64_t
patchedTag(std::uint64_t base, std::uint64_t rev)
{
    return rev == 0 ? base : base ^ (rev * 0x9E3779B97F4A7C15ull);
}

/**
 * Mutable view of a schedule's binding handed out by patchBegin():
 * the per-op resource id array, opCount entries, to be rewritten in
 * place and then sealed with patchCommit().
 */
struct BindingView
{
    ResourceId *opRes = nullptr;
    std::size_t opCount = 0;
};

/**
 * Read-only snapshot of the compiled CSR arrays, handed out by
 * CompiledSchedule::view() for consumers that walk the schedule
 * without replaying it through the member functions — the obs layer's
 * traced replay and critical-path extraction. Task t's deps are
 * depIds[depOff[t]..depOff[t+1]) and its ops index the SoA component
 * arrays over [opOff[t], opOff[t+1)), exactly as inside the class.
 * Pointers are invalidated by anything that mutates the schedule
 * (addTask, clearTasks, patchBegin); take the view per use, not once.
 */
struct ScheduleView
{
    const std::uint32_t *depOff = nullptr;
    const TaskId *depIds = nullptr;
    const std::uint32_t *opOff = nullptr;
    const ResourceId *opRes = nullptr;
    const double *opBytes = nullptr;
    const double *opWork0 = nullptr;
    const double *opWork1 = nullptr;
    const double *opSec = nullptr;
    const double *opPost = nullptr;
    std::size_t taskCount = 0;
    std::size_t opCount = 0;
    std::size_t resourceCount = 0;
};

/** A task graph compiled to CSR arrays for scaled replay. */
class CompiledSchedule
{
  public:
    /** Register a resource; returns its id (dense from zero). */
    ResourceId addResource(std::string name);

    std::size_t resourceCount() const { return names.size(); }
    const std::string &resourceName(ResourceId id) const;

    /**
     * Pre-size the CSR arrays for a schedule of `tasks` tasks carrying
     * `deps` dependencies and `ops` ops in total. Purely an
     * optimization: compilers that know their totals up front (the RPU
     * and shard lowerings) avoid every growth reallocation of the
     * build loop. Over-estimates waste memory only until the schedule
     * is destroyed; under-estimates merely fall back to growth.
     */
    void reserve(std::size_t tasks, std::size_t deps, std::size_t ops);

    /**
     * Append a task of `ops` (at least one) depending on the earlier
     * tasks `deps`. Panics on forward/self dependencies, empty ops, or
     * an unknown resource id — the same contract as EventQueue — and,
     * as the compile-time half of the replay watchdog, on any cost
     * numerator that is negative or non-finite (such an op could only
     * produce a garbage makespan).
     */
    TaskId addTask(const std::vector<TaskId> &deps,
                   const std::vector<CompiledOp> &ops);

    /**
     * Span-style addTask: the same contract over raw (pointer, count)
     * ranges, so compilers can append from reused buffers without
     * materializing vectors per task.
     */
    TaskId addTask(const TaskId *deps, std::size_t ndeps,
                   const CompiledOp *ops_in, std::size_t nops);

    /**
     * addTask without the per-op cost validation or the forward-dep
     * check, inline so the append is just the CSR pushes. Only for
     * re-appending op templates a prior addTask() of this process
     * already validated (the shard engine's partition repatch replays
     * its cached lowering through here) with dep ids the caller
     * guarantees precede the new task; patchCommit() still bounds-
     * checks every op's resource id. The validated addTask() is the
     * front door for anything lowered from fresh input.
     */
    TaskId addTaskTrusted(const TaskId *deps, std::size_t ndeps,
                          const CompiledOp *ops_in, std::size_t nops)
    {
        const TaskId id = static_cast<TaskId>(taskCount());
        depIds.insert(depIds.end(), deps, deps + ndeps);
        depOff.push_back(static_cast<std::uint32_t>(depIds.size()));
        for (std::size_t i = 0; i < nops; ++i) {
            const CompiledOp &op = ops_in[i];
            opRes.push_back(op.resource);
            opBytes.push_back(op.bytes);
            opWork0.push_back(op.work[0]);
            opWork1.push_back(op.work[1]);
            opSec.push_back(op.seconds);
            opPost.push_back(op.postSeconds);
        }
        opOff.push_back(static_cast<std::uint32_t>(opRes.size()));
        return id;
    }

    std::size_t taskCount() const { return opOff.size() - 1; }
    std::size_t opCount() const { return opRes.size(); }
    std::size_t depCount() const { return depIds.size(); }

    /**
     * Stamp the base layout tag — the opaque identity of the layout
     * the current binding was lowered (or last patched) against.
     * Leaves the patch revision alone; compilers stamping a fresh
     * build use this, patches go through patchCommit().
     */
    void setLayoutTag(std::uint64_t t) { tag = t; }

    /**
     * Identity of the current binding: the base layout tag mixed with
     * the patch revision (patchedTag). Consumers verify it before
     * replaying with layout-derived rates; a rate vector built against
     * an earlier revision of this schedule fails the check even when
     * both revisions bound the same layout. 0 = untagged fresh
     * schedule (hand-built).
     */
    std::uint64_t layoutTag() const { return patchedTag(tag, rev); }

    /** The compiler-stamped layout identity alone, revision-free. */
    std::uint64_t baseLayoutTag() const { return tag; }

    /** Patches committed since compile (0 = fresh build). */
    std::uint64_t patchRevision() const { return rev; }

    /**
     * Begin an in-place rebind of the op → resource assignment: sizes
     * the resource table to `resources` entries (existing names keep
     * their ids; new ids start unnamed — name them with
     * patchResourceName) and returns the mutable binding. The CSR
     * skeleton — offsets and cost numerators — is untouched, and no
     * allocation happens unless the resource table grows. The schedule
     * must not be replayed between patchBegin and patchCommit.
     */
    BindingView patchBegin(std::size_t resources);

    /** Rename resource `id` in place (reuses the string's storage). */
    void patchResourceName(ResourceId id, const char *name);

    /**
     * Seal a patch: validates that every op targets a live resource,
     * stamps `newBaseTag` as the base layout tag, and bumps the patch
     * revision so layoutTag() is distinct from every earlier revision
     * of this schedule.
     */
    void patchCommit(std::uint64_t newBaseTag);

    /**
     * Drop every task (deps and ops) while keeping the resource table,
     * tags and array capacity: the rebuild half of the patch API, for
     * patches that change task structure itself (the shard engine's
     * partition repatch re-adds tasks after this). Follow the rebuild
     * with patchCommit() to restore a consistent tag.
     */
    void clearTasks();

    /**
     * Simulate the whole schedule at one replay point: a single pass
     * over tasks in id order evaluates the same scheduling recurrence
     * as EventQueue::run (deps point backward and per-resource queues
     * fill in task order, so task order is a valid issue order).
     * Returns the makespan — the latest task finish, which includes
     * any post-service propagation delay; per-task finish times and
     * per-resource utilization are left in `scratch`. Thread-safe for
     * concurrent calls with distinct scratch.
     */
    double replay(const ReplayRates &rates, ReplayScratch &scratch) const;

    /**
     * replay() with piecewise service rates: resource r serves at
     * `rates` scaled by the multiplier of its current RateEpochs epoch,
     * advancing epochs as simulated time passes. An op that spans an
     * epoch boundary progresses fractionally — the fraction of its
     * service remaining when the rate changes is re-timed at the new
     * rate — so degradation mid-op is modeled, not snapped to op
     * boundaries. `done`, when non-null, is a taskCount()-byte mask:
     * tasks with done[t] != 0 are already complete (finish 0, no
     * resource occupancy) — the failover path uses it to replay only
     * the tasks that survive a mid-run re-placement. With an empty
     * epoch table and a null mask this delegates to replay() and is
     * bit-identical to it; with every multiplier 1.0 the piecewise
     * arithmetic itself is exact (x * 1.0 == x), so a trivial trace
     * also reproduces replay() bit-for-bit. Thread-safe for concurrent
     * calls with distinct scratch.
     */
    double replayPiecewise(const ReplayRates &rates, const RateEpochs &ep,
                           const std::uint8_t *done,
                           ReplayScratch &scratch) const;

    /**
     * Non-aborting validation of a replay point against this schedule:
     * RateMismatch when `rates` covers a different resource count than
     * the binding (same message the aborting path panics with), and
     * NonFiniteRate when any byte or work rate is NaN, infinite, or
     * non-positive — the run-time half of the replay watchdog (the
     * compile-time half lives in addTask). Ok means replay() on these
     * rates cannot produce NaN (only +inf on overflow, which the
     * post-replay finite check reports with the offending op).
     */
    Error checkReplay(const ReplayRates &rates) const;

    /**
     * Non-aborting validation of an epoch table against this schedule:
     * BadFaultTrace on a malformed CSR (off size != resourceCount + 1,
     * offsets not monotone or not spanning at/mult), non-increasing
     * epoch times within a resource, or a multiplier/time that is not
     * finite and positive (times must be >= 0).
     */
    Error checkEpochs(const RateEpochs &ep) const;

    /**
     * replay() that reports instead of panicking: validates the rates
     * (checkReplay) and the resulting makespan, writing it to `out` on
     * success. A non-finite makespan — only possible via overflow to
     * +inf, given validated rates — is reported as NonFiniteDuration
     * with the first offending op id and resource name. The aborting
     * replay() path stays panic-on-mismatch for internal callers.
     */
    Error tryReplay(const ReplayRates &rates, ReplayScratch &scratch,
                    double &out) const;

    /**
     * Simulate the schedule at `n` replay points with one walk of the
     * compiled arrays per kBatchLanes-point block, instead of n
     * independent walks: op costs are read once per block and
     * evaluated across the block's lanes with lane-contiguous scratch,
     * so the inner loop vectorizes and the dominant cost of a sweep —
     * memory traffic over the compiled arrays — is amortized across
     * the batch. Every lane performs the exact divides and maxes of a
     * scalar replay() at that point, so scratch.makespan[i] is
     * bit-identical to replay(points[i], ...) for every i. Thread-safe
     * for concurrent calls with distinct scratch.
     */
    void replayMany(const ReplayRates *points, std::size_t n,
                    BatchScratch &scratch) const;

    /** replay() plus SimResult packaging (allocates; for tests/tools). */
    SimResult run(const ReplayRates &rates) const;

    /**
     * Read-only view of the CSR arrays (see ScheduleView). Costs the
     * pointer loads only; the replay paths never touch it.
     */
    ScheduleView
    view() const
    {
        return ScheduleView{depOff.data(),  depIds.data(),
                            opOff.data(),   opRes.data(),
                            opBytes.data(), opWork0.data(),
                            opWork1.data(), opSec.data(),
                            opPost.data(),  taskCount(),
                            opCount(),      names.size()};
    }

  private:
    /** One <= kBatchLanes-wide block of replayMany. */
    void replayBlock(const ReplayRates *points, std::size_t lanes,
                     BatchScratch &s, double *makespans) const;

    /**
     * The replay() recurrence without rate validation or the finite
     * watchdog — shared by the aborting replay() and the reporting
     * tryReplay().
     */
    double replayCore(const ReplayRates &rates,
                      ReplayScratch &scratch) const;

    /** Panic unless `rates` covers this schedule's resources. */
    void checkRates(const ReplayRates &rates) const;

    /**
     * Cold-path rescan after a non-finite makespan: find the first op
     * whose duration (or finish) went non-finite at `rates` and format
     * "op <i> (resource <name>)" for the watchdog report.
     */
    std::string nonFiniteOpReport(const ReplayRates &rates) const;

    // --- binding: rewritten in place by the patch API ---
    std::vector<std::string> names;
    std::uint64_t tag = 0;
    /** Patches committed since compile; mixed into layoutTag(). */
    std::uint64_t rev = 0;
    // --- skeleton: CSR arrays, fixed by the lowering ---
    // Task t's deps are depIds[depOff[t]..depOff[t+1]) and its ops are
    // index range [opOff[t], opOff[t+1]) into the SoA op component
    // arrays below.
    std::vector<std::uint32_t> depOff{0};
    std::vector<TaskId> depIds;
    std::vector<std::uint32_t> opOff{0};
    // Op components, structure-of-arrays (see file comment). opRes is
    // binding (patchable); the cost numerators are skeleton.
    std::vector<ResourceId> opRes;
    std::vector<double> opBytes;
    std::vector<double> opWork0;
    std::vector<double> opWork1;
    std::vector<double> opSec;
    std::vector<double> opPost;
};

} // namespace ciflow::sim

#endif // CIFLOW_SIM_COMPILED_SCHEDULE_H
