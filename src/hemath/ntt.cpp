#include "hemath/ntt.h"

#include "common/logging.h"
#include "hemath/primes.h"

namespace ciflow
{

namespace
{

/** Reverse the low `bits` bits of v. */
std::size_t
bitReverse(std::size_t v, std::size_t bits)
{
    std::size_t r = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

} // namespace

NttTable::NttTable(std::size_t n_, u64 q_) : degree(n_), q(q_)
{
    fatalIf(degree < 2 || (degree & (degree - 1)) != 0,
            "NTT degree must be a power of two >= 2");
    fatalIf((q - 1) % (2 * degree) != 0,
            "modulus is not NTT friendly for this degree");

    logDegree = 0;
    while ((1ull << logDegree) < degree)
        ++logDegree;

    psiRoot = findPrimitiveRoot2N(q, degree);
    u64 psi_inv = invMod(psiRoot, q);
    nInv = invMod(static_cast<u64>(degree), q);
    nInvPrecon = preconMulMod(nInv, q);

    psiRev.resize(degree);
    psiRevPrecon.resize(degree);
    psiInvRev.resize(degree);
    psiInvRevPrecon.resize(degree);

    u64 p = 1, pi = 1;
    std::vector<u64> pow(degree), pow_inv(degree);
    for (std::size_t i = 0; i < degree; ++i) {
        pow[i] = p;
        pow_inv[i] = pi;
        p = mulMod(p, psiRoot, q);
        pi = mulMod(pi, psi_inv, q);
    }
    for (std::size_t i = 0; i < degree; ++i) {
        std::size_t r = bitReverse(i, logDegree);
        psiRev[i] = pow[r];
        psiInvRev[i] = pow_inv[r];
        psiRevPrecon[i] = preconMulMod(psiRev[i], q);
        psiInvRevPrecon[i] = preconMulMod(psiInvRev[i], q);
    }
}

void
NttTable::forward(u64 *a) const
{
    std::size_t t = degree;
    for (std::size_t m = 1; m < degree; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t j1 = 2 * i * t;
            u64 s = psiRev[m + i];
            u64 sp = psiRevPrecon[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = mulModPrecon(a[j + t], s, sp, q);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTable::inverse(u64 *a) const
{
    std::size_t t = 1;
    for (std::size_t m = degree; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            u64 s = psiInvRev[h + i];
            u64 sp = psiInvRevPrecon[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = mulModPrecon(subMod(u, v, q), s, sp, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t i = 0; i < degree; ++i)
        a[i] = mulModPrecon(a[i], nInv, nInvPrecon, q);
}

void
NttTable::forward(std::vector<u64> &a) const
{
    panicIf(a.size() != degree, "NTT input size mismatch");
    forward(a.data());
}

void
NttTable::inverse(std::vector<u64> &a) const
{
    panicIf(a.size() != degree, "NTT input size mismatch");
    inverse(a.data());
}

} // namespace ciflow
