/**
 * @file
 * Functional hybrid key switching (HKS) with selectable dataflow order.
 *
 * This is the computation the whole paper is about. keySwitch() takes a
 * single polynomial `a` (Eval domain, basis B_level) whose product with
 * the old key s' must be re-expressed under s, and returns the pair
 * (ks0, ks1) over B_level such that ks0 + ks1 s ≈ a s' (mod Q_level).
 *
 * The ModUp phase (paper stages P1–P5) and ModDown phase (P1–P4) can be
 * executed in any of the three CiFlow schedules:
 *   - MaxParallel:   stage-by-stage over all towers/digits,
 *   - DigitCentric:  one digit through all ModUp stages at a time,
 *   - OutputCentric: one *output tower* at a time via single-column
 *                    basis conversions (BaseConverter::convertTower).
 * All three produce bit-identical results (modular sums commute); a test
 * asserts this, tying the dataflow taxonomy to functional correctness.
 */

#ifndef CIFLOW_CKKS_KEYSWITCH_H
#define CIFLOW_CKKS_KEYSWITCH_H

#include <utility>

#include "ckks/keys.h"
#include "ckks/params.h"
#include "hemath/poly.h"

namespace ciflow
{

/** Execution order of the HKS stages (the paper's three dataflows). */
enum class ScheduleOrder { MaxParallel, DigitCentric, OutputCentric };

/** Name of a schedule order ("MP", "DC", "OC"). */
const char *scheduleName(ScheduleOrder s);

/** Functional hybrid key switching. */
class KeySwitcher
{
  public:
    explicit KeySwitcher(const CkksContext &ctx) : ctx(ctx) {}

    /**
     * Switch `a` (Eval domain, basis B_level) from the evk's source key
     * to its target key.
     *
     * @param a      polynomial to switch (typically c1 or the degree-2
     *               ciphertext component)
     * @param evk    hybrid key-switching key
     * @param level  current level (a has level+1 towers)
     * @param order  dataflow schedule to execute
     * @return       (ks0, ks1) over B_level, Eval domain
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &a,
                                          const EvalKey &evk,
                                          std::size_t level,
                                          ScheduleOrder order) const;

    /**
     * ModUp only: returns the accumulated key product (two polys over
     * D_level, Eval). Exposed for tests.
     */
    std::pair<RnsPoly, RnsPoly> modUp(const RnsPoly &a, const EvalKey &evk,
                                      std::size_t level,
                                      ScheduleOrder order) const;

    /**
     * ModDown only: divide a poly over D_level by P, returning a poly
     * over B_level (Eval). Exposed for tests.
     */
    RnsPoly modDown(const RnsPoly &x, std::size_t level) const;

    /**
     * ModUp *extension* only (P1-P3, no key multiply): the digits of
     * `a` extended to D_level, in Eval domain. This is the expensive,
     * key-independent half of HKS that hoisting (Halevi-Shoup; cf. the
     * double-hoisting of Bossuat et al. the paper cites) shares across
     * several key switches of the same polynomial.
     */
    std::vector<RnsPoly> modUpExtend(const RnsPoly &a,
                                     std::size_t level) const;

    /**
     * Apply-key + reduce + ModDown on digits already extended by
     * modUpExtend (or a permutation of them). Completes one hoisted key
     * switch.
     */
    std::pair<RnsPoly, RnsPoly> applyExtended(
        const std::vector<RnsPoly> &ext, const EvalKey &evk,
        std::size_t level) const;

  private:
    /** INTT of one digit of `a` (returns coefficient-domain towers). */
    std::vector<std::vector<u64>> digitIntt(const RnsPoly &a,
                                            std::size_t level,
                                            std::size_t j) const;

    /** Indices into the full key basis D_L for the towers of D_level. */
    std::vector<std::size_t> keyTowerIndices(std::size_t level) const;

    std::pair<RnsPoly, RnsPoly> modUpMaxParallel(const RnsPoly &a,
                                                 const EvalKey &evk,
                                                 std::size_t level) const;
    std::pair<RnsPoly, RnsPoly> modUpDigitCentric(const RnsPoly &a,
                                                  const EvalKey &evk,
                                                  std::size_t level) const;
    std::pair<RnsPoly, RnsPoly> modUpOutputCentric(const RnsPoly &a,
                                                   const EvalKey &evk,
                                                   std::size_t level)
        const;

    const CkksContext &ctx;
};

} // namespace ciflow

#endif // CIFLOW_CKKS_KEYSWITCH_H
