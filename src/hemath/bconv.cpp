#include "hemath/bconv.h"

#include "common/logging.h"

namespace ciflow
{

BaseConverter::BaseConverter(const RnsBase &from, const RnsBase &to)
    : srcModuli(from.primes()), dstModuli(to.primes())
{
    hatInv.resize(srcModuli.size());
    hatInvPrecon.resize(srcModuli.size());
    hatMod.assign(srcModuli.size(),
                  std::vector<u64>(dstModuli.size(), 0));
    for (std::size_t i = 0; i < srcModuli.size(); ++i) {
        hatInv[i] = from.puncturedInv(i);
        hatInvPrecon[i] = preconMulMod(hatInv[i], srcModuli[i]);
        for (std::size_t j = 0; j < dstModuli.size(); ++j)
            hatMod[i][j] = from.puncturedProduct(i).mod64(dstModuli[j]);
    }
}

std::vector<u64>
BaseConverter::convertCoeff(const std::vector<u64> &x) const
{
    panicIf(x.size() != srcModuli.size(), "convertCoeff arity mismatch");
    std::vector<u64> y(dstModuli.size(), 0);
    for (std::size_t i = 0; i < srcModuli.size(); ++i) {
        u64 yi = mulModPrecon(x[i], hatInv[i], hatInvPrecon[i],
                              srcModuli[i]);
        for (std::size_t j = 0; j < dstModuli.size(); ++j) {
            y[j] = addMod(y[j],
                          mulMod(yi % dstModuli[j], hatMod[i][j],
                                 dstModuli[j]),
                          dstModuli[j]);
        }
    }
    return y;
}

void
BaseConverter::convert(const std::vector<std::vector<u64>> &src,
                       std::vector<std::vector<u64>> &dst) const
{
    panicIf(src.size() != srcModuli.size(), "convert arity mismatch");
    const std::size_t n = src[0].size();
    dst.assign(dstModuli.size(), std::vector<u64>(n, 0));
    // Scale each source tower by hatInv once, then accumulate into every
    // target tower (the dataflow-relevant N*alpha*beta multiply count).
    std::vector<u64> scaled(n);
    for (std::size_t i = 0; i < srcModuli.size(); ++i) {
        panicIf(src[i].size() != n, "ragged convert input");
        for (std::size_t k = 0; k < n; ++k) {
            scaled[k] = mulModPrecon(src[i][k], hatInv[i],
                                     hatInvPrecon[i], srcModuli[i]);
        }
        for (std::size_t j = 0; j < dstModuli.size(); ++j) {
            const u64 tj = dstModuli[j];
            const u64 w = hatMod[i][j];
            const u64 wp = preconMulMod(w % tj, tj);
            for (std::size_t k = 0; k < n; ++k) {
                dst[j][k] = addMod(dst[j][k],
                                   mulModPrecon(scaled[k] % tj, w % tj,
                                                wp, tj),
                                   tj);
            }
        }
    }
}

std::vector<u64>
BaseConverter::convertTower(const std::vector<std::vector<u64>> &src,
                            std::size_t j) const
{
    panicIf(src.size() != srcModuli.size(), "convertTower arity mismatch");
    panicIf(j >= dstModuli.size(), "convertTower target out of range");
    const std::size_t n = src[0].size();
    const u64 tj = dstModuli[j];
    std::vector<u64> y(n, 0);
    for (std::size_t i = 0; i < srcModuli.size(); ++i) {
        const u64 w = hatMod[i][j] % tj;
        const u64 wp = preconMulMod(w, tj);
        for (std::size_t k = 0; k < n; ++k) {
            u64 yi = mulModPrecon(src[i][k], hatInv[i], hatInvPrecon[i],
                                  srcModuli[i]);
            y[k] = addMod(y[k], mulModPrecon(yi % tj, w, wp, tj), tj);
        }
    }
    return y;
}

} // namespace ciflow
