/**
 * @file
 * MetricsRegistry: named counters and gauges for harness telemetry.
 *
 * The bench harnesses already gate perf on a handful of JSON fields;
 * everything else the subsystems know — cache hit rates, patched-eval
 * counts, batch-lane occupancy, fault-scenario outcomes — was either
 * printed as prose or dropped. The registry is the machine-readable
 * middle: components export their counters into one insertion-ordered
 * namespace ("runner.cache_hits", "tuner.patched_evals",
 * "faults.failovers"), and every BENCH_*.json dumps the registry as a
 * `metrics` block so dashboards and jq one-liners read one shape.
 *
 * Counters are monotonically accumulated uint64s; gauges are
 * last-write-wins doubles (fractions, ratios). Writes take a mutex —
 * export happens at harness cadence, never on a replay hot path.
 */

#ifndef CIFLOW_OBS_METRICS_H
#define CIFLOW_OBS_METRICS_H

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ciflow::obs
{

/** One named metric: a counter (uint64) or a gauge (double). */
struct Metric
{
    std::string name;
    /** True for counters; false for gauges. */
    bool isCounter = true;
    /** Accumulated value (counters). */
    std::uint64_t count = 0;
    /** Last written value (gauges). */
    double value = 0.0;
};

/**
 * An insertion-ordered collection of named metrics. Components add to
 * it through exportMetrics(registry, "prefix") hooks; harnesses
 * serialize it with writeJson() or walk snapshot() through their own
 * writer. Re-counting an existing name accumulates; re-gauging one
 * overwrites. Mixing kinds under one name panics — that is a naming
 * bug, not data.
 */
class MetricsRegistry
{
  public:
    /** Add `delta` to counter `name` (creating it at zero). */
    void count(const std::string &name, std::uint64_t delta);

    /** Set gauge `name` to `value` (creating it). */
    void gauge(const std::string &name, double value);

    /** Copy of the metrics in insertion order. */
    std::vector<Metric> snapshot() const;

    /**
     * Serialize as one JSON object, insertion-ordered: counters as
     * integers, gauges at %.6g. No trailing newline — the caller owns
     * the surrounding document.
     */
    void writeJson(std::ostream &os) const;

  private:
    Metric &slot(const std::string &name, bool isCounter);

    mutable std::mutex mu;
    std::vector<Metric> metrics;
    std::unordered_map<std::string, std::size_t> index;
};

} // namespace ciflow::obs

#endif // CIFLOW_OBS_METRICS_H
