#include "tune/tune_space.h"

#include <cstdio>

#include "common/logging.h"
#include "hksflow/dataflow.h"

namespace ciflow::tune
{

const char *
axisName(Axis a)
{
    switch (a) {
    case Axis::Dataflow:
        return "dataflow";
    case Axis::Capacity:
        return "capacity";
    case Axis::Bandwidth:
        return "bandwidth";
    case Axis::Channels:
        return "channels";
    case Axis::Policy:
        return "policy";
    case Axis::Skew:
        return "skew";
    case Axis::Modops:
        return "modops";
    case Axis::Shards:
        return "shards";
    case Axis::Topology:
        return "topology";
    case Axis::Strategy:
        return "strategy";
    }
    return "?";
}

std::string
TunePoint::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s cap=%lluMiB bw=%ggbps ch=%zux%s skew=%g "
                  "modops=%gx K=%zu %s/%s",
                  dataflowName(dataflow),
                  static_cast<unsigned long long>(dataMemBytes >> 20),
                  bandwidthGBps, memChannels,
                  channelPolicy == ChannelPolicy::Interleave ? "il"
                  : channelPolicy == ChannelPolicy::EvkDedicated
                      ? "evk"
                      : "ll",
                  channelSkew, modopsMult, shards,
                  shard::topologyName(topology),
                  shard::strategyName(strategy));
    return buf;
}

std::size_t
TuneSpace::axisSize(Axis a) const
{
    switch (a) {
    case Axis::Dataflow:
        return dataflows.size();
    case Axis::Capacity:
        return capacities.size();
    case Axis::Bandwidth:
        return bandwidths.size();
    case Axis::Channels:
        return channelCounts.size();
    case Axis::Policy:
        return channelPolicies.size();
    case Axis::Skew:
        return channelSkews.size();
    case Axis::Modops:
        return modopsMults.size();
    case Axis::Shards:
        return shardCounts.size();
    case Axis::Topology:
        return topologies.size();
    case Axis::Strategy:
        return strategies.size();
    }
    return 0;
}

std::size_t
TuneSpace::pointCount() const
{
    std::size_t n = 1;
    for (std::size_t a = 0; a < kAxisCount; ++a)
        n *= axisSize(static_cast<Axis>(a));
    return n;
}

void
TuneSpace::validate() const
{
    for (std::size_t a = 0; a < kAxisCount; ++a)
        panicIf(axisSize(static_cast<Axis>(a)) == 0,
                "empty tune axis");
}

TunePoint
TuneSpace::at(const std::vector<std::size_t> &idx) const
{
    panicIf(idx.size() != kAxisCount, "tune index arity mismatch");
    for (std::size_t a = 0; a < kAxisCount; ++a)
        panicIf(idx[a] >= axisSize(static_cast<Axis>(a)),
                "tune index out of range");
    TunePoint p;
    p.dataflow = dataflows[idx[std::size_t(Axis::Dataflow)]];
    p.dataMemBytes = capacities[idx[std::size_t(Axis::Capacity)]];
    p.bandwidthGBps = bandwidths[idx[std::size_t(Axis::Bandwidth)]];
    p.memChannels = channelCounts[idx[std::size_t(Axis::Channels)]];
    p.channelPolicy =
        channelPolicies[idx[std::size_t(Axis::Policy)]];
    p.channelSkew = channelSkews[idx[std::size_t(Axis::Skew)]];
    p.modopsMult = modopsMults[idx[std::size_t(Axis::Modops)]];
    p.shards = shardCounts[idx[std::size_t(Axis::Shards)]];
    p.topology = topologies[idx[std::size_t(Axis::Topology)]];
    p.strategy = strategies[idx[std::size_t(Axis::Strategy)]];
    return p;
}

std::vector<std::size_t>
TuneSpace::unflatten(std::size_t flat) const
{
    panicIf(flat >= pointCount(), "flat tune index out of range");
    std::vector<std::size_t> idx(kAxisCount, 0);
    for (std::size_t a = kAxisCount; a-- > 0;) {
        const std::size_t n = axisSize(static_cast<Axis>(a));
        idx[a] = flat % n;
        flat /= n;
    }
    return idx;
}

RpuConfig
TuneSpace::chipConfig(const TunePoint &p) const
{
    RpuConfig cfg = chip;
    cfg.dataMemBytes = p.dataMemBytes;
    cfg.evkOnChip = evkOnChip;
    cfg.bandwidthGBps = p.bandwidthGBps;
    cfg.memChannels = p.memChannels;
    cfg.channelPolicy = p.channelPolicy;
    cfg.modopsMult = p.modopsMult;
    cfg.channelGBps.clear();
    if (p.channelSkew != 1.0 && p.memChannels > 1) {
        // Channel c gets a skew^c share of the aggregate; skew > 1
        // models a fast channel (HBM) next to slower ones (CXL).
        double sum = 0.0, w = 1.0;
        for (std::size_t c = 0; c < p.memChannels; ++c, w *= p.channelSkew)
            sum += w;
        w = 1.0;
        for (std::size_t c = 0; c < p.memChannels; ++c, w *= p.channelSkew)
            cfg.channelGBps.push_back(p.bandwidthGBps * w / sum);
    }
    return cfg;
}

MemoryConfig
TuneSpace::memoryConfig(const TunePoint &p) const
{
    MemoryConfig mem;
    mem.dataCapacityBytes = p.dataMemBytes;
    mem.evkOnChip = evkOnChip;
    return mem;
}

} // namespace ciflow::tune
