#include "hksflow/task.h"

#include "common/logging.h"

namespace ciflow
{

const char *
stageName(StageId s)
{
    switch (s) {
      case StageId::ModUpIntt:
        return "ModUp P1: INTT";
      case StageId::ModUpBconv:
        return "ModUp P2: BConv";
      case StageId::ModUpNtt:
        return "ModUp P3: NTT";
      case StageId::ModUpKeyMul:
        return "ModUp P4: Apply Key";
      case StageId::ModUpReduce:
        return "ModUp P5: Reduce";
      case StageId::ModDownIntt:
        return "ModDown P1: INTT";
      case StageId::ModDownBconv:
        return "ModDown P2: BConv";
      case StageId::ModDownNtt:
        return "ModDown P3: NTT";
      case StageId::ModDownFinish:
        return "ModDown P4: Sum & Return";
      case StageId::DataMove:
        return "Data movement";
    }
    panic("unknown stage");
}

std::uint32_t
TaskGraph::push(Task t)
{
    t.id = static_cast<std::uint32_t>(list.size());
    switch (t.kind) {
      case TaskKind::MemLoad:
        loads += t.bytes;
        if (t.isEvk)
            evkLoads += t.bytes;
        break;
      case TaskKind::MemStore:
        stores += t.bytes;
        break;
      case TaskKind::Compute:
        ops += t.modOps;
        shuffles += t.shuffleOps;
        break;
    }
    list.push_back(std::move(t));
    return list.back().id;
}

std::size_t
TaskGraph::countKind(TaskKind k) const
{
    std::size_t c = 0;
    for (const auto &t : list)
        if (t.kind == k)
            ++c;
    return c;
}

std::uint64_t
TaskGraph::stageModOps(StageId s) const
{
    std::uint64_t c = 0;
    for (const auto &t : list)
        if (t.kind == TaskKind::Compute && t.stage == s)
            c += t.modOps;
    return c;
}

void
TaskGraph::validate() const
{
    for (std::size_t i = 0; i < list.size(); ++i) {
        const Task &t = list[i];
        panicIf(t.id != i, "task id out of sequence");
        for (std::uint32_t d : t.deps)
            panicIf(d >= t.id, "forward dependency in task graph");
        if (t.kind == TaskKind::Compute) {
            panicIf(t.bytes != 0, "compute task with bytes");
            panicIf(t.modOps == 0, "compute task with no work");
        } else {
            panicIf(t.bytes == 0, "memory task with no bytes");
            panicIf(t.modOps != 0 || t.shuffleOps != 0,
                    "memory task with ops");
        }
    }
}

} // namespace ciflow
