/**
 * @file
 * Property sweep over synthetic HKS shapes beyond the five paper
 * benchmarks: the dataflow invariants (op equality, traffic ordering,
 * compulsory-traffic floor, graph validity, engine monotonicity) must
 * hold for arbitrary (logN, kl, kp, dnum) combinations, including
 * ragged digit splits and degenerate single-digit / single-special
 * cases.
 */

#include <gtest/gtest.h>

#include "hksflow/opmodel.h"
#include "hksflow/traffic.h"
#include "rpu/experiment.h"

using namespace ciflow;

namespace
{

struct Shape
{
    std::size_t logN, kl, kp, dnum;
};

HksParams
makeParams(const Shape &s)
{
    std::size_t alpha = (s.kl + s.dnum - 1) / s.dnum;
    return {"SYN", s.logN, s.kl, s.kp, s.dnum, alpha};
}

MemoryConfig
memFor(const HksParams &p)
{
    // Capacity scaled to the shape: roughly a third of the temp data,
    // but never below the feasibility minimum.
    std::uint64_t cap = p.tempBytes() / 3;
    for (Dataflow d : allDataflows())
        cap = std::max(cap, minDataCapacity(p, d));
    return {cap, false};
}

} // namespace

class SyntheticShape : public ::testing::TestWithParam<Shape>
{
  protected:
    SyntheticShape() : par(makeParams(GetParam())), mem(memFor(par)) {}

    HksParams par;
    MemoryConfig mem;
};

TEST_P(SyntheticShape, OpCountsInvariantAcrossDataflows)
{
    OpModel om(par);
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par, d, mem);
        EXPECT_EQ(g.totalModOps(), om.totalHks().modOps)
            << dataflowName(d);
        EXPECT_EQ(g.totalShuffleOps(), om.totalHks().shuffleOps)
            << dataflowName(d);
    }
}

TEST_P(SyntheticShape, OcNeverMovesMoreThanMp)
{
    TaskGraph mp = buildHksGraph(par, Dataflow::MP, mem);
    TaskGraph oc = buildHksGraph(par, Dataflow::OC, mem);
    EXPECT_LE(oc.trafficBytes(), mp.trafficBytes());
}

TEST_P(SyntheticShape, CompulsoryTrafficFloor)
{
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par, d, mem);
        EXPECT_GE(g.loadBytes(), par.inputBytes() + par.evkBytes())
            << dataflowName(d);
        EXPECT_GE(g.storeBytes(), par.outputBytes()) << dataflowName(d);
        g.validate();
    }
}

TEST_P(SyntheticShape, EvkBytesExact)
{
    for (Dataflow d : allDataflows()) {
        TaskGraph g = buildHksGraph(par, d, mem);
        EXPECT_EQ(g.evkBytes(), par.evkBytes()) << dataflowName(d);
    }
}

TEST_P(SyntheticShape, EngineMonotoneAndDeadlockFree)
{
    for (Dataflow d : allDataflows()) {
        HksExperiment exp(par, d, mem);
        double prev = 1e99;
        for (double bw : {4.0, 16.0, 64.0, 256.0}) {
            double rt = exp.simulate(bw).runtime;
            EXPECT_GT(rt, 0.0);
            EXPECT_LE(rt, prev * (1 + 1e-9)) << dataflowName(d);
            prev = rt;
        }
    }
}

TEST_P(SyntheticShape, DigitGeometryConsistent)
{
    std::size_t total = 0;
    for (std::size_t j = 0; j < par.dnum; ++j) {
        EXPECT_GE(par.digitTowers(j), 1u);
        EXPECT_LE(par.digitTowers(j), par.alpha);
        total += par.digitTowers(j);
    }
    EXPECT_EQ(total, par.kl);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyntheticShape,
    ::testing::Values(
        Shape{14, 8, 4, 2},    // small, even split
        Shape{14, 9, 3, 2},    // ragged: 5 + 4
        Shape{15, 12, 4, 3},   // mid-size
        Shape{15, 7, 7, 1},    // single digit (BTS1-like)
        Shape{16, 20, 4, 5},   // many digits
        Shape{16, 13, 2, 4},   // ragged: 4+4+4+1, tiny P
        Shape{17, 30, 10, 2},  // large, wide digits
        Shape{13, 6, 6, 6},    // alpha = 1
        Shape{17, 45, 15, 5},  // BTS3 towers, more digits
        Shape{16, 24, 6, 2}),  // ARK towers, fewer digits
    [](const ::testing::TestParamInfo<Shape> &info) {
        const Shape &s = info.param;
        return "logN" + std::to_string(s.logN) + "_kl" +
               std::to_string(s.kl) + "_kp" + std::to_string(s.kp) +
               "_d" + std::to_string(s.dnum);
    });
