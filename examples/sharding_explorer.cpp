/**
 * @file
 * Sharding explorer: a small CLI over the multi-RPU shard stack.
 *
 * Usage:
 *   sharding_explorer [benchmark] [dataflow] [shards]
 *                     [contiguous|mincut] [bus|p2p] [chip_gbps]
 *                     [link_gbps] [latency_us]
 *
 * Defaults: ARK OC 4 mincut p2p 16 256 2. Prints the partition (per
 * shard work and task counts), the interconnect cut, and the sharded
 * schedule against the single-RPU baseline, with per-resource busy
 * times for every chip and link.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/units.h"
#include "rpu/experiment.h"
#include "shard/sharded_engine.h"

using namespace ciflow;
using namespace ciflow::shard;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "ARK";
    std::string flow = argc > 2 ? argv[2] : "OC";
    std::size_t shards =
        argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;
    bool mincut = argc > 4 ? std::string(argv[4]) == "mincut" : true;
    bool p2p = argc > 5 ? std::string(argv[5]) != "bus" : true;
    double chip_gbps = argc > 6 ? std::atof(argv[6]) : 16.0;
    double link_gbps = argc > 7 ? std::atof(argv[7]) : 256.0;
    double latency_us = argc > 8 ? std::atof(argv[8]) : 2.0;

    const HksParams &par = benchmarkByName(bench);
    Dataflow d = Dataflow::OC;
    for (Dataflow cand : allDataflows())
        if (flow == dataflowName(cand))
            d = cand;
    const MemoryConfig mem{32ull << 20, false};

    RpuConfig chip;
    chip.bandwidthGBps = chip_gbps;
    chip.dataMemBytes = mem.dataCapacityBytes;
    chip.evkOnChip = mem.evkOnChip;

    InterconnectConfig net;
    net.topology = p2p ? Topology::PointToPoint : Topology::SharedBus;
    net.linkGBps = link_gbps;
    net.latencySec = latency_us * 1e-6;

    std::printf("%s\n", par.describe().c_str());
    std::printf("dataflow=%s chips=%zu x %.0fGB/s (evk streamed) "
                "interconnect=%s %.0fGB/s %.1fus strategy=%s\n\n",
                dataflowName(d), shards, chip_gbps,
                topologyName(net.topology), link_gbps, latency_us,
                mincut ? "mincut" : "contiguous");

    HksExperiment exp(par, d, mem);
    const TaskGraph &g = exp.graph();

    ShardSpec spec;
    spec.shards = shards;
    spec.strategy = mincut ? PartitionStrategy::MinCutGreedy
                           : PartitionStrategy::ContiguousByLevel;
    spec.computeOutputBytes = par.towerBytes();
    Partition p = partitionGraph(g, spec, taskWeights(g, chip));

    std::printf("Partition of %zu tasks:\n", g.size());
    std::vector<std::size_t> counts(shards, 0);
    for (std::uint32_t s : p.shardOf)
        ++counts[s];
    for (std::size_t s = 0; s < shards; ++s)
        std::printf("  rpu%-2zu %7zu tasks, %8.3f ms of estimated "
                    "work\n",
                    s, counts[s], p.shardWork[s] * 1e3);
    std::printf("  imbalance %.1f%%, cut %s over %zu transfers\n\n",
                p.imbalance() * 100,
                formatBytes(p.cutBytes).c_str(), p.cutEdges.size());

    const double base = exp.simulate(chip).runtime;
    ShardedEngine eng(chip, net);
    ShardedStats s = eng.run(g, p);

    std::printf("single RPU     %9.3f ms\n", base * 1e3);
    std::printf("%zu-way sharded %9.3f ms  (%.2fx)\n", shards,
                s.runtimeMs(), base / s.runtime);
    std::printf("  DRAM busy (all chips)  %9.3f ms\n", s.memBusy * 1e3);
    std::printf("  compute busy           %9.3f ms\n",
                s.compBusy * 1e3);
    std::printf("  link busy              %9.3f ms over %s\n\n",
                s.linkBusy * 1e3,
                formatBytes(s.transferBytes).c_str());

    std::printf("Per-resource schedule:\n");
    for (const auto &r : s.resources)
        if (r.jobs > 0)
            std::printf("  %-14s busy %9.3f ms  (%6zu tasks, %5.1f%% "
                        "of runtime)\n",
                        r.name.c_str(), r.busySeconds * 1e3, r.jobs,
                        s.runtime > 0
                            ? 100.0 * r.busySeconds / s.runtime
                            : 0.0);
    return 0;
}
