/**
 * @file
 * Reproduces paper Figure 7: for every benchmark, the OC runtime at
 * OCbase with evks on-chip versus the bandwidth needed to recover that
 * runtime when streaming evks from off-chip, and the slowdown at equal
 * bandwidth. Paper: 1.3x (BTS1) to 2.9x (ARK) more bandwidth recovers
 * the on-chip runtime while saving 12.25x SRAM; BTS2 shows the largest
 * equal-bandwidth slowdown (1.33x).
 */

#include <cstdio>

#include "bench_util.h"
#include "rpu/area.h"
#include "rpu/experiment.h"

using namespace ciflow;

int
main()
{
    benchutil::header("Figure 7: OC with evks streamed vs on-chip");

    struct Ref
    {
        double equiv_bw; // paper's second clustered bar
    };
    const std::vector<std::pair<std::string, double>> paper = {
        {"BTS1", 33.3}, {"BTS2", 17.0}, {"BTS3", 45.62},
        {"ARK", 23.4},  {"DPRIVE", 19.2}};

    std::printf("%-9s | %8s | %12s | %12s | %10s | %9s\n", "Benchmark",
                "OCbase", "slowdown@bw", "equiv BW", "paper", "BW "
                "factor");
    benchutil::rule();

    MemoryConfig on{32ull << 20, true};
    MemoryConfig off{32ull << 20, false};
    for (const auto &[name, ref_bw] : paper) {
        const HksParams &b = benchmarkByName(name);
        double ocbase = ocBaseBandwidth(b);
        HksExperiment oc_on(b, Dataflow::OC, on);
        HksExperiment oc_off(b, Dataflow::OC, off);
        double target = oc_on.simulate(ocbase).runtime;
        double slowdown = oc_off.simulate(ocbase).runtime / target;
        double equiv = bandwidthToMatch(oc_off, target);
        std::printf("%-9s | %8.1f | %11.2fx | %9.2f GB/s | %7.2f GB/s | "
                    "%8.2fx\n",
                    name.c_str(), ocbase, slowdown, equiv, ref_bw,
                    equiv / ocbase);
    }
    benchutil::rule();
    std::printf("SRAM: streaming evks keeps 32 MiB on-chip instead of "
                "392 MiB (12.25x saving);\n"
                "RPU area drops from %.2f mm^2 to %.2f mm^2 (paper: "
                "401.85 -> 41.85).\n",
                rpuAreaMm2(392), rpuAreaMm2(32));

    // The cross-comparison quoted in §VI-B: streamed OC still saves
    // bandwidth against the original 64 GB/s MP-with-evks-on-chip.
    for (const char *name : {"BTS2", "BTS3"}) {
        const HksParams &b = benchmarkByName(name);
        HksExperiment oc_off(b, Dataflow::OC, off);
        double bw = bandwidthToMatch(oc_off, baselineRuntime(b));
        std::printf("%s: streamed OC matches the MP baseline at %.1f "
                    "GB/s -> %.1fx bandwidth saving (paper: %s)\n",
                    name, bw, 64.0 / bw,
                    std::string(name) == "BTS2" ? "3.3x" : "1.4x");
    }
    return 0;
}
