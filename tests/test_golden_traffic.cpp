/**
 * @file
 * Golden-traffic regression test: DRAM trafficBytes of every Table II
 * configuration (32 MiB on-chip data memory, evks streamed) is pinned
 * to the byte. Traffic depends only on the builders — not on
 * bandwidth, MODOPS or the engine's resource layout — so any change
 * here means a dataflow schedule changed and the paper comparison
 * tables (Table II MB values, Figure 4..9 runtimes) move with it.
 *
 * If a deliberate builder change shifts these values, re-derive the
 * constants with the snippet in the test body and re-verify
 * bench/table2_traffic against the paper's reference column.
 */

#include <gtest/gtest.h>

#include "rpu/runner.h"

using namespace ciflow;

namespace
{

struct Golden
{
    const char *benchmark;
    Dataflow dataflow;
    std::uint64_t trafficBytes;
};

/** Pinned on the Table II memory config: 32 MiB data, evk streamed. */
constexpr Golden kGolden[] = {
    {"BTS1", Dataflow::MP, 660602880ull},
    {"BTS1", Dataflow::DC, 660602880ull},
    {"BTS1", Dataflow::OC, 452984832ull},
    {"BTS2", Dataflow::MP, 1788870656ull},
    {"BTS2", Dataflow::DC, 1428160512ull},
    {"BTS2", Dataflow::OC, 889192448ull},
    {"BTS3", Dataflow::MP, 2512388096ull},
    {"BTS3", Dataflow::DC, 2090860544ull},
    {"BTS3", Dataflow::OC, 1025507328ull},
    {"ARK", Dataflow::MP, 585105408ull},
    {"ARK", Dataflow::DC, 321912832ull},
    {"ARK", Dataflow::OC, 171442176ull},
    {"DPRIVE", Dataflow::MP, 544210944ull},
    {"DPRIVE", Dataflow::DC, 301989888ull},
    {"DPRIVE", Dataflow::OC, 220200960ull},
};

} // namespace

TEST(GoldenTraffic, Table2ConfigsPinnedToTheByte)
{
    MemoryConfig mem{32ull << 20, false};
    ExperimentRunner runner;
    for (const Golden &g : kGolden) {
        auto exp =
            runner.experiment(benchmarkByName(g.benchmark), g.dataflow, mem);
        EXPECT_EQ(exp->graph().trafficBytes(), g.trafficBytes)
            << g.benchmark << "/" << dataflowName(g.dataflow);
    }
}

TEST(GoldenTraffic, TrafficIndependentOfEngineConfiguration)
{
    // The engine layer must never change traffic: it reports the
    // graph's bytes whatever the channel count or pipe split.
    MemoryConfig mem{32ull << 20, false};
    HksExperiment exp(benchmarkByName("ARK"), Dataflow::OC, mem);
    RpuConfig wide;
    wide.memChannels = 8;
    wide.splitComputePipes = true;
    wide.channelPolicy = ChannelPolicy::EvkDedicated;
    EXPECT_EQ(exp.simulate(64.0).trafficBytes,
              exp.simulate(wide).trafficBytes);
}

TEST(GoldenTraffic, OcTrafficAlwaysLowest)
{
    // Table II's qualitative claim, pinned structurally: OC moves the
    // least data on every benchmark.
    MemoryConfig mem{32ull << 20, false};
    for (const auto &b : paperBenchmarks()) {
        std::uint64_t mp =
            HksExperiment(b, Dataflow::MP, mem).graph().trafficBytes();
        std::uint64_t dc =
            HksExperiment(b, Dataflow::DC, mem).graph().trafficBytes();
        std::uint64_t oc =
            HksExperiment(b, Dataflow::OC, mem).graph().trafficBytes();
        EXPECT_LT(oc, mp) << b.name;
        EXPECT_LE(oc, dc) << b.name;
        EXPECT_LE(dc, mp) << b.name;
    }
}
