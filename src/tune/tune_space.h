/**
 * @file
 * TuneSpace: the joint knob space an auto-tuning search explores.
 *
 * The paper's claim is that RPU performance is dominated by a small
 * set of co-designed knobs — dataflow, on-chip capacity, DRAM channel
 * layout, and MODOPS budget. A TuneSpace enumerates one axis per knob
 * (plus optional multi-chip axes that delegate to the sharding layer)
 * and materializes any index tuple into the concrete
 * (Dataflow, MemoryConfig, RpuConfig, shard options) an evaluation
 * needs. Graph-shaping axes (dataflow, capacity) select an
 * ExperimentRunner cache entry; the remaining axes are pure replay
 * knobs, so a point evaluation after warm-up is one compiled-schedule
 * replay.
 *
 * Axes are index spaces, not value spaces: search strategies walk
 * small integer tuples and only materialize a TunePoint at evaluation
 * time, which keeps coordinate/neighbor moves trivial and the
 * evaluation cache keyable by value.
 */

#ifndef CIFLOW_TUNE_TUNE_SPACE_H
#define CIFLOW_TUNE_TUNE_SPACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "hksflow/dataflow.h"
#include "rpu/config.h"
#include "shard/interconnect.h"
#include "shard/partition.h"

namespace ciflow::tune
{

/** Axis order of a TuneSpace index tuple. */
enum class Axis : std::size_t {
    Dataflow,
    Capacity,
    Bandwidth,
    Channels,
    Policy,
    Skew,
    Modops,
    Shards,
    Topology,
    Strategy,
};

/** Number of axes in every TuneSpace. */
constexpr std::size_t kAxisCount = 10;

/** Short axis name ("dataflow", "bandwidth", ...). */
const char *axisName(Axis a);

/** One concrete configuration drawn from a TuneSpace. */
struct TunePoint
{
    Dataflow dataflow = Dataflow::OC;
    /** Vector data-memory capacity (bytes). */
    std::uint64_t dataMemBytes = 32ull << 20;
    /** Per-chip off-chip bandwidth (GB/s, aggregate over channels). */
    double bandwidthGBps = 64.0;
    std::size_t memChannels = 1;
    ChannelPolicy channelPolicy = ChannelPolicy::Interleave;
    /**
     * Per-channel bandwidth asymmetry: channel c gets a share
     * proportional to skew^c of bandwidthGBps. 1.0 = symmetric
     * channels (the RpuConfig::channelGBps vector stays empty, so the
     * replay path is bit-identical to the plain-bandwidth one).
     */
    double channelSkew = 1.0;
    double modopsMult = 1.0;
    /** Chips; 1 = single RPU, >1 delegates to the sharding layer. */
    std::size_t shards = 1;
    shard::Topology topology = shard::Topology::PointToPoint;
    shard::PartitionStrategy strategy =
        shard::PartitionStrategy::MinCutGreedy;

    /** One-line human-readable description. */
    std::string describe() const;
};

/**
 * The knob grid one Tuner searches. Every axis must be non-empty;
 * single-element axes pin a knob. Non-axis fields (base chip,
 * interconnect, evk residency) are shared by every point.
 */
struct TuneSpace
{
    std::vector<Dataflow> dataflows = {Dataflow::MP, Dataflow::DC,
                                       Dataflow::OC};
    /** Data-memory capacities (bytes). */
    std::vector<std::uint64_t> capacities = {32ull << 20};
    /** Off-chip bandwidths per chip (GB/s). */
    std::vector<double> bandwidths = {64.0};
    std::vector<std::size_t> channelCounts = {1};
    std::vector<ChannelPolicy> channelPolicies = {
        ChannelPolicy::Interleave};
    /** Per-channel asymmetry factors (see TunePoint::channelSkew). */
    std::vector<double> channelSkews = {1.0};
    std::vector<double> modopsMults = {1.0};
    /** Chip counts; entries > 1 evaluate through src/shard. */
    std::vector<std::size_t> shardCounts = {1};
    std::vector<shard::Topology> topologies = {
        shard::Topology::PointToPoint};
    std::vector<shard::PartitionStrategy> strategies = {
        shard::PartitionStrategy::MinCutGreedy};

    /** evk residency for every point (a graph-shaping choice). */
    bool evkOnChip = false;
    /** Base chip configuration the axes override. */
    RpuConfig chip;
    /** Inter-chip network for shard counts > 1. */
    shard::InterconnectConfig interconnect;
    /** MinCutGreedy load-cap tolerance (see ShardSpec). */
    double imbalanceTol = 0.10;

    /** Size of axis `a`. */
    std::size_t axisSize(Axis a) const;
    /** Product of all axis sizes. */
    std::size_t pointCount() const;
    /** panic() when any axis is empty. */
    void validate() const;

    /** Materialize the point at index tuple `idx` (kAxisCount long). */
    TunePoint at(const std::vector<std::size_t> &idx) const;
    /** Index tuple of flat point number `flat` (row-major). */
    std::vector<std::size_t> unflatten(std::size_t flat) const;

    /**
     * The full RpuConfig of `p`: the base chip with every axis knob
     * applied, including the skew-derived channelGBps vector and the
     * memory fields (capacity, evk residency) the graph is built
     * against.
     */
    RpuConfig chipConfig(const TunePoint &p) const;
    /** The graph-shaping memory configuration of `p`. */
    MemoryConfig memoryConfig(const TunePoint &p) const;
};

} // namespace ciflow::tune

#endif // CIFLOW_TUNE_TUNE_SPACE_H
