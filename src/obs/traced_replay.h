/**
 * @file
 * Traced replay: the CompiledSchedule recurrence with an observer.
 *
 * replayTraced() and replayPiecewiseTraced() compute the exact replay
 * recurrence of CompiledSchedule::replay() / replayPiecewise() —
 * the same IEEE divides, maxes and adds in the same order over the
 * ScheduleView — while additionally appending one TraceOp per
 * executed op into a caller-owned TraceBuffer. The results (makespan,
 * scratch.finish/freeAt/busy/jobs) are bit-identical to the plain
 * paths at every replay point, piecewise epochs and done masks
 * included; tests/test_obs.cpp asserts this on randomized DAGs.
 *
 * The observer lives here, in a separate walk, rather than as a hook
 * inside replay(): the plain hot path — the one sweeps and tuners
 * replay millions of times — keeps zero new branches, and tracing
 * stays strictly opt-in. The cost of the duplication is owned by this
 * file's bit-identity tests, the same contract replayMany's lane
 * bodies already carry.
 */

#ifndef CIFLOW_OBS_TRACED_REPLAY_H
#define CIFLOW_OBS_TRACED_REPLAY_H

#include "obs/trace_buffer.h"
#include "sim/compiled_schedule.h"

namespace ciflow::obs
{

/**
 * replay() with per-op trace recording: validates rates (panicking on
 * the same violations replay() would), resets `buf` to the schedule's
 * op count, runs the recurrence, and returns the makespan. After the
 * call, scratch holds exactly what replay() would have left there and
 * buf holds one record per op in issue order with buf.makespan set.
 * Thread-safe for concurrent calls with distinct scratch and buffers.
 */
double replayTraced(const sim::CompiledSchedule &cs,
                    const sim::ReplayRates &rates,
                    sim::ReplayScratch &scratch, TraceBuffer &buf);

/**
 * replayPiecewise() with per-op trace recording: piecewise service
 * rates from `ep` (validated like the plain path), an optional done
 * mask (tasks with done[t] != 0 finish at 0, occupy nothing, and
 * record nothing), and the same fractional-progress re-timing across
 * epoch boundaries. Records carry the epoch index in effect at issue.
 * With an empty epoch table and a null mask this delegates to
 * replayTraced() and is bit-identical to replay() by construction.
 */
double replayPiecewiseTraced(const sim::CompiledSchedule &cs,
                             const sim::ReplayRates &rates,
                             const sim::RateEpochs &ep,
                             const std::uint8_t *done,
                             sim::ReplayScratch &scratch,
                             TraceBuffer &buf);

} // namespace ciflow::obs

#endif // CIFLOW_OBS_TRACED_REPLAY_H
