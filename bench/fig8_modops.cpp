/**
 * @file
 * Reproduces paper Figure 8: ARK HKS runtime under the OC dataflow at
 * 1x/2x/4x/8x/16x MODOPS across the bandwidth sweep (evks on-chip),
 * including the saturation-point observation that 2x MODOPS reaches the
 * 1x saturation runtime with ~10x less bandwidth. The full
 * (bandwidth x MODOPS) grid is one parallel sweep on the runner pool.
 */

#include <cstdio>

#include "bench_util.h"
#include "rpu/runner.h"

using namespace ciflow;

int
main()
{
    benchutil::header(
        "Figure 8: ARK OC runtime at 1-16x MODOPS (evks on-chip)");

    const HksParams &b = benchmarkByName("ARK");
    MemoryConfig mem{32ull << 20, true};
    ExperimentRunner runner;
    auto oc = runner.experiment(b, Dataflow::OC, mem);

    const double mults[] = {1, 2, 4, 8, 16};
    const auto &bws = paperBandwidthSweepExtended();

    std::vector<SweepPoint> grid;
    for (double bw : bws)
        for (double m : mults)
            grid.push_back({bw, m});
    std::vector<SimStats> stats = runner.sweep(*oc, grid);

    std::printf("bandwidth_gbps");
    for (double m : mults)
        std::printf(",oc_%gx_ms", m);
    std::printf("\n");
    std::size_t k = 0;
    for (double bw : bws) {
        std::printf("%g", bw);
        for (std::size_t j = 0; j < std::size(mults); ++j)
            std::printf(",%.3f", stats[k++].runtimeMs());
        std::printf("\n");
    }

    // Saturation analysis (§VI-C.2).
    const double sat = oc->simulate(128.0, 1.0).runtime;
    std::printf("\nARK saturation point: OC @128 GB/s, 1x MODOPS = "
                "%.2f ms\n",
                sat * 1e3);
    double bw2 = bandwidthToMatch(*oc, sat, 1.0, 2000.0, 2.0);
    std::printf("2x MODOPS reaches saturation runtime at %.2f GB/s -> "
                "%.1fx bandwidth saving (paper: 12.8 GB/s, 10x)\n",
                bw2, 128.0 / bw2);

    // Low-bandwidth regime: MODOPS does not help when memory bound.
    double lo1 = oc->simulate(8.0, 1.0).runtime;
    double lo16 = oc->simulate(8.0, 16.0).runtime;
    std::printf("@8 GB/s, 16x MODOPS is only %.2fx faster than 1x "
                "(bandwidth limited)\n",
                lo1 / lo16);
    return 0;
}
