/**
 * @file
 * Auto-tuner strategy study over the paper's co-design knobs.
 *
 * For every paper benchmark this builds the joint
 * (dataflow x capacity x bandwidth x channels x MODOPS) grid — the
 * axes Tables IV/V and Figures 8/9 sweep one at a time — and runs the
 * three tune strategies against it:
 *
 *  - exhaustive grid: the ground-truth optimum and Pareto frontier;
 *  - coordinate descent on a fresh cache: must rediscover the grid
 *    optimum bit-identically while evaluating < 50% of the grid;
 *  - random-restart hill climb sharing the descent's cache: shows
 *    cross-strategy cache reuse.
 *
 * It also re-derives Table IV's OCbase through the tune engine
 * (tune::ocBaseBandwidth over ocBaseSpace()) and requires it to equal
 * the rpu-layer grid scan bit-identically.
 *
 * The layout-axis section measures how fast the tuner can explore the
 * channel-layout axes (memChannels x channelPolicy): one fresh
 * compile + replay per layout point (what a layout move cost before
 * incremental compile) vs the patch path (one schedule rebound in
 * place between layouts, HksExperiment::simulateRuntimeMany with a
 * LayoutSweep) — after asserting the patched runtimes are
 * bit-identical to scalar evaluation. CI gates layout_axis_speedup
 * >= 10x.
 *
 * Emits BENCH_tune.json for the CI artifact trail and exits nonzero
 * when any benchmark misses a gate — the tuner failing to rediscover
 * the paper's operating points is a regression, not a warning.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "tune/tuner.h"

using namespace ciflow;
using namespace ciflow::tune;

namespace
{

struct Row
{
    std::string benchmark;
    std::size_t spacePoints = 0;
    double exhaustiveBestMs = 0.0;
    double cdBestMs = 0.0;
    std::size_t cdEvals = 0;
    double cdFrac = 0.0;
    double hcBestMs = 0.0;
    std::size_t hcEvals = 0;
    std::size_t hcHits = 0;
    /** Lifetime EvalCache traffic of the cd+hc tuner. */
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    std::size_t paretoPoints = 0;

    /** Fraction of cd+hc lookups served from the shared cache. */
    double
    cacheHitRate() const
    {
        const std::size_t total = cacheHits + cacheMisses;
        return total > 0
                   ? static_cast<double>(cacheHits) /
                         static_cast<double>(total)
                   : 0.0;
    }
    double ocbaseGbps = 0.0;
    double ocbaseRefGbps = 0.0;
    std::string bestConfig;
    bool pass = false;

    /** Evaluations the cd+hc tuner served through the patch path. */
    std::size_t patchedEvals = 0;
    /** Layout points in the layout-axis sweep. */
    std::size_t layoutPoints = 0;
    /** Layout-axis evals/sec, one fresh compile per point. */
    double layoutFreshPerSec = 0.0;
    /** Layout-axis evals/sec through the patch path. */
    double layoutPatchedPerSec = 0.0;

    double
    layoutAxisSpeedup() const
    {
        return layoutFreshPerSec > 0.0
                   ? layoutPatchedPerSec / layoutFreshPerSec
                   : 0.0;
    }
};

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * The channel-layout grid of the layout-axis study: every channel
 * count x policy combination, all other knobs fixed — pure layout
 * moves, the worst case for a compile-per-layout tuner.
 */
std::vector<RpuConfig>
layoutAxisConfigs(const MemoryConfig &mem)
{
    std::vector<RpuConfig> cfgs;
    for (std::size_t ch : {1, 2, 4, 8})
        for (ChannelPolicy pol :
             {ChannelPolicy::Interleave, ChannelPolicy::EvkDedicated,
              ChannelPolicy::LeastLoaded}) {
            RpuConfig cfg;
            cfg.dataMemBytes = mem.dataCapacityBytes;
            cfg.evkOnChip = mem.evkOnChip;
            cfg.memChannels = ch;
            cfg.channelPolicy = pol;
            cfgs.push_back(cfg);
        }
    return cfgs;
}

/** Measure the layout-axis fresh vs patched rates for one row. */
void
measureLayoutAxis(const HksParams &par, Row &r)
{
    const MemoryConfig mem{32ull << 20, false};
    const HksExperiment exp(par, Dataflow::OC, mem);
    const std::vector<RpuConfig> cfgs = layoutAxisConfigs(mem);
    r.layoutPoints = cfgs.size();
    std::vector<double> out(cfgs.size());

    // Correctness first: the patched sweep must reproduce scalar
    // evaluation bit-identically at every layout.
    LayoutSweep sweep;
    exp.simulateRuntimeMany(cfgs.data(), cfgs.size(), out.data(),
                            sweep);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (out[i] != exp.simulateRuntime(cfgs[i])) {
            std::fprintf(stderr,
                         "FAIL: %s: patched layout sweep differs from "
                         "scalar evaluation at point %zu\n",
                         par.name.c_str(), i);
            r.pass = false;
        }
    }

    const double kBudget = 0.3; // seconds per timed path

    // Fresh path: every layout move pays a full compile, as the tuner
    // did before incremental compile (first visit of each layout).
    {
        std::size_t evals = 0;
        const Clock::time_point t0 = Clock::now();
        double elapsed = 0.0;
        do {
            for (const RpuConfig &cfg : cfgs) {
                const RpuEngine eng(cfg);
                const sim::CompiledSchedule cs =
                    eng.compile(exp.graph());
                volatile double rt = eng.replayRuntime(cs);
                (void)rt;
            }
            evals += cfgs.size();
            elapsed = secondsSince(t0);
        } while (elapsed < kBudget);
        r.layoutFreshPerSec = static_cast<double>(evals) / elapsed;
    }

    // Patch path: one schedule rebound in place between layouts.
    {
        std::size_t evals = 0;
        const Clock::time_point t0 = Clock::now();
        double elapsed = 0.0;
        do {
            exp.simulateRuntimeMany(cfgs.data(), cfgs.size(),
                                    out.data(), sweep);
            evals += cfgs.size();
            elapsed = secondsSince(t0);
        } while (elapsed < kBudget);
        r.layoutPatchedPerSec = static_cast<double>(evals) / elapsed;
    }
}

} // namespace

int
main()
{
    benchutil::header("Auto-tuner: strategies over (dataflow, "
                      "capacity, bandwidth, channels, MODOPS)");

    ExperimentRunner runner;
    const std::vector<HksParams> &benches = paperBenchmarks();
    std::vector<Row> rows(benches.size());

    // The cd+hc tuners outlive the jobs: their counters feed the
    // artifact's metrics block after the pool drains (per-benchmark
    // prefixes, exported serially so the block is deterministic).
    std::vector<std::unique_ptr<Tuner>> searches(benches.size());
    for (std::size_t i = 0; i < benches.size(); ++i)
        searches[i] = std::make_unique<Tuner>(
            runner, benches[i], paperJointSpace(benches[i]));

    // One tuner pipeline per benchmark, fanned out on the pool; each
    // strategy inside fans out its own sweeps (nested runAll).
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < benches.size(); ++i)
        jobs.push_back([&runner, &benches, &rows, &searches, i] {
            const HksParams &par = benches[i];
            Row &r = rows[i];
            r.benchmark = par.name;

            Tuner exhaustive(runner, par, paperJointSpace(par));
            const TuneResult ex = exhaustive.tune(
                {.strategy = Strategy::ExhaustiveGrid});
            r.spacePoints = ex.spaceSize;
            r.exhaustiveBestMs = ex.best.m.runtime * 1e3;
            r.paretoPoints = ex.frontier.size();
            r.bestConfig = ex.best.point.describe();

            // Fresh cache: the descent pays its own evaluations.
            Tuner &search = *searches[i];
            const TuneResult cd = search.tune(
                {.strategy = Strategy::CoordinateDescent});
            r.cdBestMs = cd.best.m.runtime * 1e3;
            r.cdEvals = cd.evaluations;
            r.cdFrac = cd.evalFraction();

            // Hill climb on the same tuner reuses the descent's cache.
            const TuneResult hc = search.tune(
                {.strategy = Strategy::RandomRestartHillClimb});
            r.hcBestMs = hc.best.m.runtime * 1e3;
            r.hcEvals = hc.evaluations;
            r.hcHits = hc.cacheHits;
            // Lifetime hit/miss traffic of the shared cd+hc cache:
            // the reuse a future batched tuner must beat.
            r.cacheHits = search.cacheHits();
            r.cacheMisses = search.evaluations();

            // Table IV's OCbase through the tune engine.
            Tuner ocb(runner, par, ocBaseSpace());
            r.ocbaseGbps = tune::ocBaseBandwidth(
                ocb, baselineRuntime(runner, par));
            r.ocbaseRefGbps = ciflow::ocBaseBandwidth(runner, par);

            r.pass = r.cdBestMs == r.exhaustiveBestMs &&
                     2 * r.cdEvals < r.spacePoints &&
                     r.hcBestMs == r.exhaustiveBestMs &&
                     r.ocbaseGbps == r.ocbaseRefGbps;
            r.patchedEvals = search.patchedEvals();
        });
    runner.runAll(jobs);

    // Timed layout-axis study, serial so the pool is quiet.
    for (std::size_t i = 0; i < benches.size(); ++i)
        measureLayoutAxis(benches[i], rows[i]);

    std::printf("%-9s | %5s | %9s %9s %6s %5s | %9s | %6s %6s | %6s\n",
                "Benchmark", "grid", "best(ms)", "cd(ms)", "evals",
                "frac", "hc(ms)", "pareto", "OCbase", "status");
    benchutil::rule();
    bool all_pass = true;
    for (const Row &r : rows) {
        std::printf("%-9s | %5zu | %9.3f %9.3f %6zu %4.0f%% | %9.3f | "
                    "%6zu %5.1fG | %6s\n",
                    r.benchmark.c_str(), r.spacePoints,
                    r.exhaustiveBestMs, r.cdBestMs, r.cdEvals,
                    r.cdFrac * 100.0, r.hcBestMs, r.paretoPoints,
                    r.ocbaseGbps, r.pass ? "ok" : "FAIL");
        all_pass = all_pass && r.pass;
    }
    benchutil::rule();
    for (const Row &r : rows)
        std::printf("%-9s best: %s\n", r.benchmark.c_str(),
                    r.bestConfig.c_str());
    for (const Row &r : rows)
        std::printf("%-9s eval cache (cd+hc): %zu hits / %zu misses "
                    "(%.0f%% hit rate), %zu patched evals\n",
                    r.benchmark.c_str(), r.cacheHits, r.cacheMisses,
                    r.cacheHitRate() * 100.0, r.patchedEvals);
    std::printf("\ncd/hc must match the exhaustive optimum "
                "bit-identically; cd must evaluate < 50%% of the "
                "grid; OCbase must equal the rpu-layer grid scan.\n");

    std::printf("\n");
    benchutil::header("Layout-axis exploration: fresh compile per "
                      "layout vs incremental patch");
    std::printf("%-9s | %6s | %11s %13s | %8s\n", "Benchmark",
                "points", "fresh ev/s", "patched ev/s", "speedup");
    benchutil::rule();
    bool meets_layout_target = true;
    for (const Row &r : rows) {
        std::printf("%-9s | %6zu | %11.0f %13.0f | %7.1fx\n",
                    r.benchmark.c_str(), r.layoutPoints,
                    r.layoutFreshPerSec, r.layoutPatchedPerSec,
                    r.layoutAxisSpeedup());
        meets_layout_target =
            meets_layout_target && r.layoutAxisSpeedup() >= 10.0;
    }
    benchutil::rule();
    std::printf("fresh   = RpuEngine::compile + replayRuntime per "
                "layout point (pre-patch tuner cost)\n");
    std::printf("patched = simulateRuntimeMany + LayoutSweep "
                "(recompileChannels between layouts)\n");
    if (!meets_layout_target)
        std::fprintf(stderr,
                     "warning: layout-axis speedup below the 10x CI "
                     "gate on this machine\n");

    // Metrics block: the runner's graph cache plus each benchmark's
    // cd+hc tuner (evaluations, cache hits, patched evals, batch-lane
    // occupancy), exported serially for a deterministic artifact.
    obs::MetricsRegistry metrics;
    runner.exportMetrics(metrics);
    for (std::size_t i = 0; i < benches.size(); ++i)
        searches[i]->exportMetrics(
            metrics, "tuner." + rows[i].benchmark + ".");

    std::ofstream jf("BENCH_tune.json");
    if (jf) {
        benchutil::JsonWriter w(jf);
        w.field("bench", "tuner");
        w.beginArray("rows");
        for (const Row &r : rows) {
            w.beginObject();
            w.field("benchmark", r.benchmark);
            w.field("space_points", r.spacePoints);
            w.field("exhaustive_best_ms", r.exhaustiveBestMs);
            w.field("cd_best_ms", r.cdBestMs);
            w.field("cd_evals", r.cdEvals);
            w.field("cd_eval_frac", r.cdFrac);
            w.field("hc_best_ms", r.hcBestMs);
            w.field("hc_evals", r.hcEvals);
            w.field("hc_cache_hits", r.hcHits);
            w.field("eval_cache_hits", r.cacheHits);
            w.field("eval_cache_misses", r.cacheMisses);
            w.field("eval_cache_hit_rate", r.cacheHitRate());
            w.field("pareto_points", r.paretoPoints);
            w.field("patched_evals", r.patchedEvals);
            w.field("layout_points", r.layoutPoints);
            w.field("layout_fresh_evals_per_sec", r.layoutFreshPerSec);
            w.field("layout_patched_evals_per_sec",
                    r.layoutPatchedPerSec);
            w.field("layout_axis_speedup", r.layoutAxisSpeedup());
            w.field("ocbase_gbps", r.ocbaseGbps);
            w.field("ocbase_ref_gbps", r.ocbaseRefGbps);
            w.field("best_config", r.bestConfig);
            w.field("pass", r.pass);
            w.endObject();
        }
        w.endArray();
        w.metrics("metrics", metrics);
        w.finish();
        jf.close();
        std::printf("wrote BENCH_tune.json\n");
    }

    if (!all_pass) {
        std::fprintf(stderr, "FAIL: a tuner gate was missed (see "
                             "status column)\n");
        return 1;
    }
    return 0;
}
