/**
 * @file
 * The CiFlow dataflow taxonomy: Max-Parallel, Digit-Centric and
 * Output-Centric schedule generators for hybrid key switching.
 *
 * Each generator emits the *same computation* (tests assert the op
 * totals equal OpModel::totalHks() for every dataflow) but a different
 * task order and residency policy, yielding different DRAM traffic under
 * a fixed on-chip capacity:
 *
 *  - MP (§IV-A): stage-by-stage over all towers; the BConv expansion
 *    (dnum*beta towers) and the full key-product working set spill.
 *  - DC (§IV-B): one digit through ModUp P1..P5 at a time; the digit's
 *    intermediates are reused on-chip but the partial key product
 *    (2*(kl+kp) towers) still thrashes for large benchmarks.
 *  - OC (§IV-C): one output tower at a time. The INTT outputs of the
 *    first dnum-1 digits stay pinned on-chip; each output tower needs
 *    only one BConv *column* per digit, fused through the vector
 *    registers (no materialized intermediate), followed by the last
 *    digit in a second pass that completes the spilled partial sums.
 */

#ifndef CIFLOW_HKSFLOW_DATAFLOW_H
#define CIFLOW_HKSFLOW_DATAFLOW_H

#include <string>

#include "hksflow/builder.h"
#include "hksflow/task.h"

namespace ciflow
{

/** The three dataflows of the paper. */
enum class Dataflow { MP, DC, OC };

/** Short name ("MP"/"DC"/"OC"). */
const char *dataflowName(Dataflow d);

/** All three dataflows, in paper order. */
const std::vector<Dataflow> &allDataflows();

/**
 * Build the HKS task graph for a benchmark under a dataflow and memory
 * configuration.
 */
TaskGraph buildHksGraph(const HksParams &par, Dataflow d,
                        const MemoryConfig &mem);

/**
 * Smallest data-memory capacity (bytes) for which the schedule is
 * feasible (largest digit or P-part must be co-resident with a small
 * workspace).
 */
std::uint64_t minDataCapacity(const HksParams &par, Dataflow d);

} // namespace ciflow

#endif // CIFLOW_HKSFLOW_DATAFLOW_H
