#include "bigint/ubigint.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ciflow
{

using u64 = std::uint64_t;
using u128 = unsigned __int128;

UBigInt::UBigInt(u64 v)
{
    if (v)
        limbs.push_back(v);
}

void
UBigInt::trim()
{
    while (!limbs.empty() && limbs.back() == 0)
        limbs.pop_back();
}

UBigInt
UBigInt::fromDecimal(const std::string &s)
{
    UBigInt r;
    for (char c : s) {
        panicIf(c < '0' || c > '9', "fromDecimal: non-digit character");
        r = r * UBigInt(10) + UBigInt(static_cast<u64>(c - '0'));
    }
    return r;
}

std::size_t
UBigInt::bitLength() const
{
    if (limbs.empty())
        return 0;
    std::size_t top_bits = 64 - __builtin_clzll(limbs.back());
    return (limbs.size() - 1) * 64 + top_bits;
}

bool
UBigInt::bit(std::size_t i) const
{
    std::size_t limb = i / 64;
    if (limb >= limbs.size())
        return false;
    return (limbs[limb] >> (i % 64)) & 1;
}

int
UBigInt::compare(const UBigInt &o) const
{
    if (limbs.size() != o.limbs.size())
        return limbs.size() < o.limbs.size() ? -1 : 1;
    for (std::size_t i = limbs.size(); i-- > 0;) {
        if (limbs[i] != o.limbs[i])
            return limbs[i] < o.limbs[i] ? -1 : 1;
    }
    return 0;
}

UBigInt
UBigInt::operator+(const UBigInt &o) const
{
    UBigInt r;
    std::size_t n = std::max(limbs.size(), o.limbs.size());
    r.limbs.resize(n, 0);
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(i < limbs.size() ? limbs[i] : 0) +
                   (i < o.limbs.size() ? o.limbs[i] : 0) + carry;
        r.limbs[i] = static_cast<u64>(sum);
        carry = static_cast<u64>(sum >> 64);
    }
    if (carry)
        r.limbs.push_back(carry);
    return r;
}

UBigInt
UBigInt::operator-(const UBigInt &o) const
{
    panicIf(*this < o, "UBigInt subtraction underflow");
    UBigInt r;
    r.limbs.resize(limbs.size(), 0);
    u64 borrow = 0;
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        u128 lhs = limbs[i];
        u128 rhs = static_cast<u128>(i < o.limbs.size() ? o.limbs[i] : 0) +
                   borrow;
        if (lhs >= rhs) {
            r.limbs[i] = static_cast<u64>(lhs - rhs);
            borrow = 0;
        } else {
            r.limbs[i] = static_cast<u64>((static_cast<u128>(1) << 64) +
                                          lhs - rhs);
            borrow = 1;
        }
    }
    r.trim();
    return r;
}

UBigInt
UBigInt::operator*(const UBigInt &o) const
{
    if (isZero() || o.isZero())
        return UBigInt();
    UBigInt r;
    r.limbs.assign(limbs.size() + o.limbs.size(), 0);
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        u64 carry = 0;
        for (std::size_t j = 0; j < o.limbs.size(); ++j) {
            u128 cur = static_cast<u128>(limbs[i]) * o.limbs[j] +
                       r.limbs[i + j] + carry;
            r.limbs[i + j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        std::size_t k = i + o.limbs.size();
        while (carry) {
            u128 cur = static_cast<u128>(r.limbs[k]) + carry;
            r.limbs[k] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
            ++k;
        }
    }
    r.trim();
    return r;
}

UBigInt
UBigInt::shiftLeft(std::size_t bits) const
{
    if (isZero() || bits == 0)
        return bits == 0 ? *this : UBigInt();
    std::size_t limb_shift = bits / 64;
    std::size_t bit_shift = bits % 64;
    UBigInt r;
    r.limbs.assign(limbs.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        r.limbs[i + limb_shift] |= limbs[i] << bit_shift;
        if (bit_shift)
            r.limbs[i + limb_shift + 1] |= limbs[i] >> (64 - bit_shift);
    }
    r.trim();
    return r;
}

UBigInt
UBigInt::shiftRight(std::size_t bits) const
{
    std::size_t limb_shift = bits / 64;
    std::size_t bit_shift = bits % 64;
    if (limb_shift >= limbs.size())
        return UBigInt();
    UBigInt r;
    r.limbs.assign(limbs.size() - limb_shift, 0);
    for (std::size_t i = 0; i < r.limbs.size(); ++i) {
        r.limbs[i] = limbs[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs.size())
            r.limbs[i] |= limbs[i + limb_shift + 1] << (64 - bit_shift);
    }
    r.trim();
    return r;
}

void
UBigInt::divMod(const UBigInt &d, UBigInt &q, UBigInt &r) const
{
    panicIf(d.isZero(), "UBigInt division by zero");
    q = UBigInt();
    r = UBigInt();
    if (*this < d) {
        r = *this;
        return;
    }
    // Bitwise long division; adequate for precomputation-time use.
    std::size_t n = bitLength();
    q.limbs.assign((n + 63) / 64, 0);
    for (std::size_t i = n; i-- > 0;) {
        r = r.shiftLeft(1);
        if (bit(i)) {
            if (r.limbs.empty())
                r.limbs.push_back(1);
            else
                r.limbs[0] |= 1;
        }
        if (r >= d) {
            r -= d;
            q.limbs[i / 64] |= (1ull << (i % 64));
        }
    }
    q.trim();
}

UBigInt
UBigInt::operator/(const UBigInt &o) const
{
    UBigInt q, r;
    divMod(o, q, r);
    return q;
}

UBigInt
UBigInt::operator%(const UBigInt &o) const
{
    UBigInt q, r;
    divMod(o, q, r);
    return r;
}

u64
UBigInt::mod64(u64 m) const
{
    panicIf(m == 0, "UBigInt mod64 by zero");
    u128 rem = 0;
    for (std::size_t i = limbs.size(); i-- > 0;)
        rem = ((rem << 64) | limbs[i]) % m;
    return static_cast<u64>(rem);
}

double
UBigInt::toDouble() const
{
    double r = 0.0;
    for (std::size_t i = limbs.size(); i-- > 0;)
        r = r * 18446744073709551616.0 + static_cast<double>(limbs[i]);
    return r;
}

std::string
UBigInt::toDecimal() const
{
    if (isZero())
        return "0";
    UBigInt tmp = *this;
    const UBigInt ten(10);
    std::string s;
    while (!tmp.isZero()) {
        UBigInt q, r;
        tmp.divMod(ten, q, r);
        s.push_back(static_cast<char>('0' + r.low64()));
        tmp = q;
    }
    std::reverse(s.begin(), s.end());
    return s;
}

UBigInt
productOf(const std::vector<u64> &values)
{
    UBigInt p(1);
    for (u64 v : values)
        p *= UBigInt(v);
    return p;
}

} // namespace ciflow
